"""Explicit execution lifecycle: sessions own runtime resources, plans own
the per-program hot path.

The paper's stack compiles once and runs many times; this module gives that
shape a first-class API:

* :class:`~repro.core.config.ExecutionConfig` — one validated configuration
  object shared by every frontend (see :mod:`repro.core.config`);
* :class:`Session` — a context manager that *owns* the execution resources
  previously hidden behind module globals: the persistent OS-process worker
  pool, the shared-memory field-block pool, the intra-rank thread teams and
  the thread-world rank executor.  ``warmup()`` pre-spawns them, ``close()``
  releases them, and every plan of the session reuses them across runs;
* :class:`Plan` — returned by :meth:`Session.plan`; pre-resolves everything
  per-run work used to recompute: the default-function lookup, the kernel
  selection, the decomposition strategy and halo/margin geometry, the
  scatter/gather slice plans, the shared-memory block leases, and the
  cast/constant lookups of the interpreted time loop
  (:func:`repro.interp.compile_block_plans`).  ``plan.run(fields, scalars)``
  is therefore a thin hot path suitable for serving many requests.

The legacy ``run_local`` / ``run_distributed`` helpers in
:mod:`repro.core.executor` remain as deprecated shims delegating to a
process-wide default session; they produce bit-identical fields and
statistics, just without the amortization.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from .. import runtime as _process_runtime
from ..interp import Interpreter, SimulatedMPI, compile_block_plans
from ..interp.codegen import (
    CodegenError,
    CodegenFallback,
    CompiledMegakernel,
    emit_megakernel,
    megakernel_signature,
    trace_program,
)
from ..interp.interpreter import ExecStatistics, wrap_argument
from ..interp.mpi_runtime import CommStatistics, MPIRuntimeError
from ..interp.thread_team import ThreadTeam
from ..interp.vectorize import CompiledKernel
from ..obs import MetricsRegistry, Tracer, TraceTimeline
from ..runtime.stats import merge_comm_statistics, sort_rank_stats
from ..transforms.distribute import GridSlicingStrategy
from .config import (
    ExecutionConfig,
    ExecutionError,
    RuntimeFallbackWarning,
    normalize_margin,
)
from .executor import (
    ExecutionResult,
    _kernel_for_backend,
    local_field_slices,
)
from .pipeline import CompiledProgram


def _default_function(program: CompiledProgram) -> str:
    names = sorted(program.function_names)
    if not names:
        raise ExecutionError("compiled module contains no function definitions")
    if "kernel" in names:
        return "kernel"
    if len(names) == 1:
        return names[0]
    raise ExecutionError(
        "compiled module defines several functions "
        f"({', '.join(repr(n) for n in names)}) and none is named 'kernel'; "
        "pass function=... to select one"
    )


@dataclass
class SessionCounters:
    """Observable lifecycle counters (tests assert reuse across runs)."""

    plans_created: int = 0
    runs_completed: int = 0
    warmups: int = 0
    #: Thread-world rank executors constructed (reuse keeps this at 1).
    rank_executors_created: int = 0
    #: Session-owned intra-rank thread teams constructed.
    thread_teams_created: int = 0


class Session:
    """Owns the execution runtime: worker pool, shared blocks, thread teams.

    ::

        with Session(ExecutionConfig(runtime="processes", ranks=4)) as session:
            plan = session.plan(program)
            for request in requests:
                plan.run([u0, u1], [timesteps])   # thin, amortized hot path

    A session is cheap to construct — resources are spawned on first use, or
    ahead of time by :meth:`warmup` (also triggered by entering a session
    whose config has ``warm_start=True``).  ``close()`` (or leaving the
    ``with`` block) releases everything the session created; a closed session
    rejects further work.  One-shot callers can use :meth:`run`, which builds
    and disposes a plan around a single execution.
    """

    def __init__(self, config: Optional[ExecutionConfig] = None, **overrides):
        self.config = ExecutionConfig.coerce(config, **overrides)
        self.counters = SessionCounters()
        #: Unified counter registry: every run's ExecStatistics/CommStatistics
        #: are ingested here (``exec.*`` / ``comm.*``) alongside session-level
        #: counters such as megakernel cache hits and worker errors.
        self.metrics = MetricsRegistry()
        #: Lifecycle tracer ("session" track) when the session config traces.
        self.tracer: Optional[Tracer] = (
            Tracer(self.config.trace, track="session")
            if self.config.trace != "off" else None
        )
        self._last_trace: Optional[TraceTimeline] = None
        self._closed = False
        self._lock = threading.Lock()
        #: Serializes thread-world runs: interleaving two SPMD worlds on one
        #: bounded executor could starve ranks of a partially-admitted run.
        self._thread_run_lock = threading.Lock()
        self._plans: list[Plan] = []
        self._teams: dict[int, ThreadTeam] = {}
        self._rank_executor: Optional[ThreadPoolExecutor] = None
        self._rank_executor_size = 0
        #: Worker-pool ownership; per-session by default, the process-wide
        #: manager/pool pair for the default (shim-compatibility) session.
        self._pool_manager = _process_runtime.PoolManager()
        self._field_pool = _process_runtime.SharedFieldPool()
        self._owns_runtime = True
        #: Cross-run megakernel cache shared by every plan of this session,
        #: keyed by (program fingerprint, function, rank, size, argument
        #: signature, overlap flag, traced flag); values are CompiledMegakernel
        #: or the CodegenFallback that explains why none could be built.
        self._megakernel_cache: dict[tuple, Any] = {}

    # -- lifecycle ------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def worker_pools_created(self) -> int:
        """How many OS-process worker pools this session's manager spawned."""
        return self._pool_manager.pools_created

    def _ensure_open(self) -> None:
        if self._closed:
            raise ExecutionError("session is closed; create a new Session")

    def __enter__(self) -> "Session":
        self._ensure_open()
        if self.config.warm_start:
            self.warmup()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Release every resource this session created (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for plan in list(self._plans):
            plan.close()
        with self._lock:
            if self._rank_executor is not None:
                self._rank_executor.shutdown(wait=False)
                self._rank_executor = None
                self._rank_executor_size = 0
            for team in self._teams.values():
                team.shutdown()
            self._teams.clear()
        if self._owns_runtime:
            self._pool_manager.shutdown()
            self._field_pool.clear()

    def warmup(
        self,
        program: Optional[CompiledProgram] = None,
        *,
        ranks: Optional[int] = None,
        threads_per_rank: Optional[int] = None,
        runtime: Optional[str] = None,
    ) -> None:
        """Pre-spawn the runtime so the first ``plan.run()`` pays no latency.

        Spawns the worker processes (``runtime="processes"``) or the rank
        threads (``runtime="threads"``), the intra-rank thread teams on both
        sides, and — when ``program`` is given — ships the pickled program to
        the workers ahead of the first run.  ``ranks`` defaults to the
        program's rank grid, then to ``config.ranks``; ``runtime`` defaults to
        the session config's (``Plan.warmup`` passes the plan's resolved
        runtime, which may override the session's).
        """
        self._ensure_open()
        config = self.config
        span = self.tracer.begin("session.warmup") if self.tracer is not None else 0.0
        if ranks is None:
            if program is not None and program.target.rank_grid is not None:
                ranks = GridSlicingStrategy(program.target.rank_grid).rank_count
            else:
                ranks = config.ranks
        threads = threads_per_rank if threads_per_rank is not None \
            else config.threads_per_rank
        runtime = runtime if runtime is not None else config.runtime
        if ranks is not None and ranks >= 1:
            if runtime == "processes" and \
                    _process_runtime.processes_available():
                self._pool_manager.warmup(ranks, threads, timeout=config.timeout)
                if program is not None:
                    pool = self._pool_manager.acquire(ranks)
                    pool.ship_program(program, ranks)
            else:
                self._prespawn_rank_threads(ranks)
                if threads > 1:
                    self._team(threads)
        elif threads > 1:
            self._team(threads)
        if self.tracer is not None:
            self.tracer.end("session.warmup", span)
        self.counters.warmups += 1

    def dump_trace(self, path: str) -> str:
        """Write the most recent traced run's timeline as Chrome trace JSON.

        The file loads directly in Perfetto (ui.perfetto.dev) or
        ``chrome://tracing``: one track per rank plus the compile, session and
        plan tracks.  Requires a prior run with ``trace="timeline"`` or
        ``trace="summary"`` on this session.
        """
        if self._last_trace is None:
            raise ExecutionError(
                "no traced run to dump; run a plan with "
                "ExecutionConfig(trace='timeline') (or REPRO_TRACE=timeline) "
                "first"
            )
        self._last_trace.dump(path)
        return path

    # -- planning and running -------------------------------------------------
    def plan(
        self,
        program: CompiledProgram,
        function: Optional[str] = None,
        config: Optional[ExecutionConfig] = None,
        **overrides,
    ) -> "Plan":
        """Pre-resolve one program/function pair for repeated execution.

        ``config`` (default: the session's) with ``overrides`` applied
        configures the plan; the plan is tracked by the session and released
        with it (or earlier via ``plan.close()``).
        """
        self._ensure_open()
        resolved = ExecutionConfig.coerce(config or self.config, **overrides)
        plan = Plan(self, program, function, resolved)
        self._plans.append(plan)
        self.counters.plans_created += 1
        return plan

    def run(
        self,
        program: CompiledProgram,
        fields: Sequence[np.ndarray],
        scalars: Sequence[Any] = (),
        *,
        function: Optional[str] = None,
        config: Optional[ExecutionConfig] = None,
        **overrides,
    ) -> ExecutionResult:
        """One-shot convenience: plan, run once, dispose the plan.

        One-shot runs keep the legacy execution discipline — fresh daemon
        rank threads per run, no shared gang — so the deprecated shims built
        on this method behave (and scale under caller concurrency) exactly
        like the pre-session helpers.  Hold a :meth:`plan` to amortize.
        """
        self._ensure_open()
        resolved = ExecutionConfig.coerce(config or self.config, **overrides)
        plan = Plan(self, program, function, resolved, one_shot=True)
        self._plans.append(plan)
        self.counters.plans_created += 1
        try:
            return plan.run(fields, scalars)
        finally:
            plan.close()

    # -- session-owned resources ----------------------------------------------
    def _team(self, size: int) -> Optional[ThreadTeam]:
        """The session-owned intra-rank thread team of ``size`` threads."""
        if size <= 1:
            return None
        with self._lock:
            team = self._teams.get(size)
            if team is None:
                team = ThreadTeam(size)
                self._teams[size] = team
                self.counters.thread_teams_created += 1
            return team

    def _acquire_rank_executor(self, size: int) -> ThreadPoolExecutor:
        with self._lock:
            if self._rank_executor is None or self._rank_executor_size < size:
                if self._rank_executor is not None:
                    self._rank_executor.shutdown(wait=False)
                self._rank_executor = ThreadPoolExecutor(
                    max_workers=size, thread_name_prefix="repro-session-rank"
                )
                self._rank_executor_size = size
                self.counters.rank_executors_created += 1
            return self._rank_executor

    def _discard_rank_executor(self) -> None:
        """Drop a poisoned executor (stale blocked rank threads occupy it)."""
        with self._lock:
            if self._rank_executor is not None:
                self._rank_executor.shutdown(wait=False)
                self._rank_executor = None
                self._rank_executor_size = 0

    def _prespawn_rank_threads(self, size: int) -> None:
        """Force the rank executor to actually start ``size`` worker threads."""
        executor = self._acquire_rank_executor(size)
        barrier = threading.Barrier(size)
        futures = [executor.submit(barrier.wait, 30.0) for _ in range(size)]
        done, pending = futures_wait(futures, timeout=60.0)
        if pending or any(f.exception() is not None for f in done):
            self._discard_rank_executor()
            raise ExecutionError("session warm-up failed to start rank threads")

    def _run_threads_world(self, size: int, body, timeout: float) -> SimulatedMPI:
        """Run ``body(comm)`` per rank on the persistent rank executor.

        Same semantics as ``SimulatedMPI.run_spmd`` — shared join deadline,
        fail-fast on the first rank error — but without spawning ``size``
        fresh OS threads per run.  A failed or timed-out run discards the
        executor (its blocked rank threads die on their own communication
        timeouts); the next run starts a fresh one.
        """
        with self._thread_run_lock:
            world = SimulatedMPI(size, timeout=timeout)
            executor = self._acquire_rank_executor(size)
            futures = [
                executor.submit(body, world.communicator(rank))
                for rank in range(size)
            ]
            done, pending = futures_wait(
                futures, timeout=timeout, return_when=FIRST_EXCEPTION
            )
            for future in done:
                error = future.exception()
                if error is not None:
                    self._discard_rank_executor()
                    raise error
            if pending:
                self._discard_rank_executor()
                raise MPIRuntimeError(
                    f"{len(pending)} rank(s) did not finish within {timeout}s "
                    "(deadlock?)"
                )
            return world

    def execute_batch(
        self,
        prepared: Sequence["PreparedRun"],
        timeout: Optional[float] = None,
    ) -> None:
        """Run many independent prepared runs in ONE rank-executor round.

        The batched-dispatch primitive of the serving layer
        (:mod:`repro.serve`): the persistent rank executor is partitioned
        across jobs — each distributed thread-world job gets a private
        :class:`SimulatedMPI` world of its own size, each local job one
        executor slot — and a single ``futures_wait`` covers the whole round,
        so N small jobs pay the dispatch latency (lock handoff, executor
        round trip, join) once instead of N times.

        Error isolation is per job: a failing rank records its exception on
        *its* :class:`PreparedRun` (``finish()`` re-raises it) and never
        touches sibling jobs; its own peer ranks terminate on their
        communication deadlines.  Only rank threads that are still stuck
        after the round deadline poison the executor, which is then discarded
        exactly as a failed standalone run would.

        Process-world jobs are not handled here — the serving layer routes
        them through ``PoolManager.run_program_batch``, which partitions the
        worker pool the same way.
        """
        self._ensure_open()
        jobs = [job for job in prepared if job.runtime != "processes"]
        if not jobs:
            return
        if timeout is None:
            timeout = max(job.plan.config.timeout for job in jobs)
        with self._thread_run_lock:
            total = sum(job.size for job in jobs)
            executor = self._acquire_rank_executor(total)
            groups: list[list] = []
            for job in jobs:
                if job.distributed:
                    world = SimulatedMPI(job.size, timeout=timeout)
                    job.world = world
                    futures = [
                        executor.submit(job.body, world.communicator(rank))
                        for rank in range(job.size)
                    ]
                else:
                    futures = [executor.submit(job.body, None)]
                groups.append(futures)
            pending = futures_wait(
                [future for futures in groups for future in futures],
                timeout=timeout + 10.0,
            )[1]
            if pending:
                # Stuck rank threads occupy the executor past the round:
                # discard it (they die on their own communication timeouts)
                # exactly as a failed standalone threads run would.
                self._discard_rank_executor()
            for job, futures in zip(jobs, groups):
                for future in futures:
                    if future in pending:
                        if job.error is None:
                            job.error = MPIRuntimeError(
                                f"job rank(s) did not finish within {timeout}s "
                                "(deadlock?)"
                            )
                        continue
                    error = future.exception()
                    if error is not None and job.error is None:
                        job.error = error


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------

def _field_signature(fields: Sequence[np.ndarray]) -> tuple:
    """The layout key of a field list: per-array (shape, dtype)."""
    return tuple((array.shape, array.dtype.str) for array in fields)


class _RunBuffers:
    """Per-field-signature state a plan reuses across runs.

    Holds the pre-computed scatter/gather slice tuples for every
    (rank, field) pair plus the per-rank local buffers: preallocated NumPy
    arrays for the thread world, leased shared-memory blocks (kept across
    runs) for the process world.
    """

    __slots__ = ("signature", "scatter_slices", "gather_slices", "locals",
                 "wrapped", "leases", "specs", "pool_generation",
                 "fresh_reused", "runs")

    def __init__(self):
        self.signature = None
        self.scatter_slices: list[list[tuple]] = []
        self.gather_slices: list[list[tuple[tuple, tuple]]] = []
        self.locals: list[list[np.ndarray]] = []
        self.wrapped: list[list] = []
        self.leases: list[list] = []
        self.specs: list[list] = []
        self.pool_generation = -1
        self.fresh_reused = 0
        self.runs = 0


class Plan:
    """A pre-resolved execution of one function of one compiled program.

    Construction performs every piece of work the legacy helpers repeated on
    each call — function lookup, kernel compilation/selection, decomposition
    geometry, interpreter block plans, runtime fallback resolution — and the
    first :meth:`run` additionally fixes the scatter/gather slice plans and
    buffers for the observed field shapes.  Subsequent runs only scatter,
    execute and gather.
    """

    def __init__(
        self,
        session: Session,
        program: CompiledProgram,
        function: Optional[str],
        config: ExecutionConfig,
        one_shot: bool = False,
    ):
        self.session = session
        self.program = program
        self.config = config
        #: Lifecycle tracer ("plan" track): plan.build, run.scatter/run.gather
        #: spans land here when the plan's config traces.
        self.tracer: Optional[Tracer] = (
            Tracer(config.trace, track="plan") if config.trace != "off" else None
        )
        build_span = self.tracer.begin("plan.build") if self.tracer is not None else 0.0
        #: One-shot plans (built by :meth:`Session.run` and the deprecated
        #: shims) keep the legacy thread-per-run discipline instead of the
        #: session's persistent rank gang.
        self.one_shot = one_shot
        self.function = function or _default_function(program)
        self.distributed = (
            program.distribution is not None and program.target.rank_grid is not None
        )
        self.runs_completed = 0
        self._closed = False
        self._buffers: Optional[_RunBuffers] = None
        #: Serializes the scatter-execute-gather span: the plan's local
        #: buffers are shared state, so two threads racing the same plan
        #: would overwrite each other's inputs mid-run.
        self._run_lock = threading.Lock()

        if self.distributed:
            self.runtime_requested = config.runtime
            runtime = config.runtime
            if runtime == "processes" and not _process_runtime.processes_available():
                runtime = "threads"
                warnings.warn(
                    "runtime='processes' was requested but the process runtime "
                    "is unavailable on this platform; falling back to "
                    "runtime='threads' (bit-identical results, no multi-core "
                    "scaling). Compare ExecutionResult.runtime_requested with "
                    ".runtime to detect degraded runs.",
                    RuntimeFallbackWarning,
                    stacklevel=3,
                )
            self.runtime = runtime
        else:
            self.runtime = self.runtime_requested = "local"

        # Kernel selection: the thread world and local runs share one
        # parent-compiled kernel; process workers rebuild their own, so the
        # parent only compiles when the kernel is used here — or when the
        # backend="vectorized" nest-count validation requires it.
        self.kernel: Optional[CompiledKernel] = None
        if self.runtime in ("local", "threads") or config.backend == "vectorized":
            self.kernel = _kernel_for_backend(program, self.function, config.backend)
        self.overlap = config.resolved_overlap()

        # Interpreter pre-resolution: the function table (built once instead
        # of once per rank per run) and the pre-resolved block plans of the
        # time loop (constants materialized, casts and handlers pre-bound).
        self._functions = {}
        from ..dialects import func as _func

        for op in program.module.walk():
            if isinstance(op, _func.FuncOp):
                self._functions[op.sym_name] = op
        self._func_op = self._functions[self.function]
        self._block_plans = compile_block_plans(self._func_op)

        # Megakernel codegen: trace the time loop once at plan construction.
        # "auto" engages for held plans on the flat (threads_per_rank == 1)
        # compiled backends — the dispatch-bound regime the megakernel is
        # for — and records its fallback reason otherwise; "megakernel"
        # forces the path and raises when it cannot be built.  Process-world
        # plans skip the parent-side trace: workers build (and cache) their
        # own megakernels from the shipped program.
        self.codegen_fallback: Optional[CodegenFallback] = None
        self._trace = None
        self._codegen_active = False
        if config.codegen == "megakernel":
            wanted = config.backend != "interpreter"
        else:
            wanted = (
                config.codegen == "auto"
                and not one_shot
                and config.threads_per_rank == 1
                and config.backend != "interpreter"
            )
        if wanted and self.runtime == "processes":
            self._codegen_active = True  # resolved worker-side
        elif wanted:
            self.compile()

        if self.distributed:
            self.strategy = GridSlicingStrategy(program.target.rank_grid)
            if config.ranks is not None and config.ranks != self.strategy.rank_count:
                raise ExecutionError(
                    f"config.ranks={config.ranks} conflicts with the program's "
                    f"rank grid {program.target.rank_grid} "
                    f"({self.strategy.rank_count} ranks)"
                )
            domain = program.distribution.local_domain
            self.halo_lower = domain.halo_lower
            self.halo_upper = domain.halo_upper
            self.margin = normalize_margin(config.margin, self.halo_lower)
        if self.tracer is not None:
            self.tracer.end("plan.build", build_span)

    # -- lifecycle ------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the plan's buffers (leased shared blocks return to the pool)."""
        if self._closed:
            return
        self._closed = True
        self._release_buffers()
        try:
            self.session._plans.remove(self)
        except ValueError:
            pass

    def _release_buffers(self) -> None:
        buffers = self._buffers
        self._buffers = None
        if buffers is not None:
            _release_run_buffers(buffers)

    def warmup(self) -> None:
        """Pre-spawn this plan's runtime (workers, teams) and ship the program."""
        ranks = self.strategy.rank_count if self.distributed else None
        self.session.warmup(
            self.program if self.runtime == "processes" else None,
            ranks=ranks,
            threads_per_rank=self.config.threads_per_rank,
            # The plan's *resolved* runtime: it may override the session's,
            # and a processes->threads fallback must warm threads instead.
            runtime=self.runtime if self.distributed else "threads",
        )

    # -- megakernel codegen ---------------------------------------------------
    def compile(self):
        """Trace the plan's time loop for megakernel execution.

        Called automatically at construction whenever the configuration
        engages codegen; callable explicitly to force (re-)tracing.  Returns
        the trace, or None with the reason recorded on
        :attr:`codegen_fallback` — unless ``codegen="megakernel"`` is forced,
        in which case failure raises :class:`ExecutionError`.  The generated
        function itself is emitted (and cached on the session, keyed by
        program fingerprint) on first run, when the concrete buffer layout
        is known.
        """
        if self._trace is not None:
            return self._trace
        try:
            if self.kernel is None:
                raise CodegenError(
                    "no compiled vectorized kernel to trace against"
                )
            self._trace = trace_program(
                self._func_op, self.kernel, overlap=self.overlap
            )
            self._codegen_active = True
            return self._trace
        except CodegenError as err:
            self._codegen_active = False
            self.codegen_fallback = CodegenFallback(self.function, str(err))
            if self.config.codegen == "megakernel":
                raise ExecutionError(
                    f"codegen='megakernel' was forced but {self.function!r} "
                    f"cannot be megakernel-compiled: {err}"
                ) from err
            return None

    def _megakernel_for(
        self, args: Sequence[Any], rank: int, size: int
    ) -> Optional[CompiledMegakernel]:
        """The cached megakernel for one rank's concrete argument layout.

        Emission failures are cached too (as CodegenFallback) so a layout
        that cannot be emitted is not re-attempted every run; in auto mode
        they deactivate codegen for this plan, in forced mode they raise.
        """
        traced = self.config.trace != "off"
        key = (
            self.program.fingerprint, self.function, rank, size,
            megakernel_signature(args), self.overlap, traced,
        )
        cache = self.session._megakernel_cache
        cached = cache.get(key)
        if cached is None:
            self.session.metrics.inc("megakernel.cache_miss")
            try:
                cached = emit_megakernel(
                    self._trace, args, rank=rank, size=size, traced=traced
                )
            except CodegenError as err:
                cached = CodegenFallback(self.function, str(err))
            cache[key] = cached
        else:
            self.session.metrics.inc("megakernel.cache_hit")
        if isinstance(cached, CodegenFallback):
            if self.config.codegen == "megakernel":
                raise ExecutionError(
                    f"codegen='megakernel' was forced but {self.function!r} "
                    f"cannot be emitted for rank {rank}/{size}: "
                    f"{cached.reason}"
                )
            self.codegen_fallback = cached
            self._codegen_active = False
            return None
        return cached

    # -- batched dispatch (the repro.serve substrate) -------------------------
    def prepare(
        self,
        fields: Sequence[np.ndarray],
        scalars: Sequence[Any] = (),
        buffers: Optional[_RunBuffers] = None,
    ) -> "PreparedRun":
        """Stage one run for a shared batched round (see :mod:`repro.serve`).

        Unlike :meth:`run`, the returned :class:`PreparedRun` owns *its own*
        buffer set, so many jobs of the same plan can be in flight inside one
        :meth:`Session.execute_batch` round.  ``buffers`` recycles a previous
        job's set when its signature still matches (the serving layer keeps a
        small free list per plan).
        """
        if self._closed:
            raise ExecutionError("plan is closed; create a new plan")
        self.session._ensure_open()
        return PreparedRun(self, fields, scalars, buffers)

    # -- the hot path ---------------------------------------------------------
    def run(
        self, fields: Sequence[np.ndarray], scalars: Sequence[Any] = ()
    ) -> ExecutionResult:
        """Execute once: scatter, run every rank, gather.  Repeatable."""
        if self._closed:
            raise ExecutionError("plan is closed; create a new plan")
        self.session._ensure_open()
        if not self.distributed:
            result = self._run_local(fields, scalars)
        else:
            for index, array in enumerate(fields):
                if not isinstance(array, np.ndarray):
                    raise ExecutionError(
                        f"distributed field {index} is {type(array).__name__}, "
                        "not a numpy array; pass scalar arguments (e.g. the "
                        "timestep count) via the scalars sequence"
                    )
            # The plan's buffers are shared state: serialize the whole
            # scatter-execute-gather span against concurrent callers.
            with self._run_lock:
                if self.runtime == "processes":
                    result = self._run_processes(fields, scalars)
                else:
                    result = self._run_threads(fields, scalars)
        self._finish_run(result)
        return result

    def _finish_run(self, result: ExecutionResult) -> None:
        """Post-run bookkeeping shared by :meth:`run` and batched dispatch."""
        self.runs_completed += 1
        self.session.counters.runs_completed += 1
        metrics = self.session.metrics
        metrics.inc("runs")
        metrics.ingest_all(result.statistics, "exec.")
        if result.comm_statistics is not None:
            metrics.ingest(result.comm_statistics, "comm.")

    def _run_local(
        self, fields: Sequence[np.ndarray], scalars: Sequence[Any]
    ) -> ExecutionResult:
        config = self.config
        tracer = (
            Tracer(config.trace, track="rank 0")
            if config.trace != "off" else None
        )
        stats = self._execute_local(fields, scalars, tracer)
        return self._attach_trace(
            ExecutionResult(
                statistics=[stats],
                runtime="local",
                runtime_requested="local",
                threads_per_rank=config.threads_per_rank,
            ),
            [tracer],
        )

    def _execute_local(
        self, fields: Sequence[Any], scalars: Sequence[Any],
        tracer: Optional[Tracer],
    ) -> ExecStatistics:
        """Execute one non-distributed run in the calling thread.

        The megakernel fast path (when codegen engaged) with the planned
        interpreter fallback; shared verbatim by :meth:`_run_local` and the
        serving layer's batched dispatch so both produce identical statistics
        and metrics.
        """
        config = self.config
        if self._codegen_active and self._trace is not None:
            args = [*fields, *scalars]
            megakernel = self._megakernel_for(args, rank=0, size=1)
            if megakernel is not None and megakernel.matches(args):
                stats = ExecStatistics()
                if megakernel.run(args, stats, None, tracer):
                    self.session.metrics.inc("megakernel.engaged")
                    return stats
                # Aliased buffers this run: bounce to the planned path.
            self.session.metrics.inc("megakernel.fallback")
        interpreter = Interpreter(
            self.program.module,
            kernel=self.kernel,
            threads=config.threads_per_rank,
            overlap_halos=self.overlap,
            functions=self._functions,
            block_plans=self._block_plans,
            team=self.session._team(config.threads_per_rank),
            tracer=tracer,
        )
        interpreter.call(self.function, *fields, *scalars)
        return interpreter.stats

    def _buffers_for(self, fields: Sequence[np.ndarray]) -> _RunBuffers:
        """The cached slice plans and local buffers for these field shapes."""
        buffers = self._buffers
        if self._buffers_valid(buffers, fields):
            return buffers
        self._release_buffers()
        buffers = self._build_buffers(fields)
        self._buffers = buffers
        return buffers

    def _buffers_valid(
        self, buffers: Optional[_RunBuffers], fields: Sequence[np.ndarray]
    ) -> bool:
        """Whether a buffer set still matches these fields (and the pool)."""
        if buffers is None or buffers.signature != _field_signature(fields):
            return False
        return self.runtime != "processes" or \
            buffers.pool_generation == self.session._field_pool.generation

    def _build_buffers(self, fields: Sequence[np.ndarray]) -> _RunBuffers:
        """Fresh slice plans and local buffers for these field shapes.

        Uncached — the serving layer builds one set per in-flight job so a
        batch can run several jobs of the *same* plan concurrently; the plan's
        own :meth:`_buffers_for` wraps this with its per-signature cache.
        """
        buffers = _RunBuffers()
        buffers.signature = _field_signature(fields)
        strategy, margin = self.strategy, self.margin
        halo_lower, halo_upper = self.halo_lower, self.halo_upper
        leased = self.runtime == "processes"
        if leased:
            pool = self.session._field_pool
            buffers.pool_generation = pool.generation
        for rank in range(strategy.rank_count):
            scatter_row, gather_row, local_row = [], [], []
            lease_row, spec_row = [], []
            for array in fields:
                slices = local_field_slices(
                    array, strategy, rank, halo_lower, halo_upper, margin
                )
                scatter_row.append(slices)
                shape = tuple(s.stop - s.start for s in slices)
                core_shape = tuple(
                    int(extent) - 2 * int(m)
                    for extent, m in zip(array.shape, margin)
                )
                start, end = strategy.global_slab(core_shape, rank)
                gather_row.append((
                    tuple(
                        slice(start[d] + margin[d], end[d] + margin[d])
                        for d in range(array.ndim)
                    ),
                    tuple(
                        slice(halo_lower[d], halo_lower[d] + (end[d] - start[d]))
                        for d in range(array.ndim)
                    ),
                ))
                if leased:
                    lease = pool.lease(shape, array.dtype)
                    lease_row.append(lease)
                    spec_row.append(lease.spec)
                    local_row.append(lease.array)
                    if lease.reused:
                        buffers.fresh_reused += 1
                else:
                    local_row.append(np.empty(shape, dtype=array.dtype))
            buffers.scatter_slices.append(scatter_row)
            buffers.gather_slices.append(gather_row)
            buffers.locals.append(local_row)
            # Pre-wrap the stable local buffers into interpreter values once;
            # every later run replays them through call_prepared.
            buffers.wrapped.append([
                wrap_argument(local, block_arg.type)
                for local, block_arg in zip(
                    local_row, self._func_op.body.block.args
                )
            ])
            if leased:
                buffers.leases.append(lease_row)
                buffers.specs.append(spec_row)
        return buffers

    def _scatter(self, buffers: _RunBuffers, fields: Sequence[np.ndarray]) -> None:
        for rank in range(self.strategy.rank_count):
            slices_row = buffers.scatter_slices[rank]
            local_row = buffers.locals[rank]
            for index, array in enumerate(fields):
                local_row[index][...] = array[slices_row[index]]

    def _gather(self, buffers: _RunBuffers, fields: Sequence[np.ndarray]) -> None:
        for rank in range(self.strategy.rank_count):
            gather_row = buffers.gather_slices[rank]
            local_row = buffers.locals[rank]
            for index, array in enumerate(fields):
                global_slices, local_slices = gather_row[index]
                array[global_slices] = local_row[index][local_slices]

    def _run_threads(
        self, fields: Sequence[np.ndarray], scalars: Sequence[Any]
    ) -> ExecutionResult:
        config = self.config
        buffers = self._buffers_for(fields)
        expected = len(self._func_op.body.block.args)
        provided = len(fields) + len(scalars)
        if provided != expected:
            raise ExecutionError(
                f"{self.function} expects {expected} arguments, got {provided}"
            )
        self._traced_move("run.scatter", self._scatter, buffers, fields)
        size = self.strategy.rank_count
        statistics: list = [None] * size
        scalars = list(scalars)
        tracers = self._rank_tracers(size)
        engaged = [False] * size
        megakernels = self._rank_megakernels(buffers, scalars, size)
        body = self._rank_body(
            buffers, scalars, statistics, engaged, tracers, megakernels
        )

        if self.one_shot:
            # Legacy discipline: fresh daemon rank threads, one shared join
            # deadline, fail-fast on the first rank error.
            world = SimulatedMPI(size, timeout=config.timeout)
            world.run_spmd(body, timeout=config.timeout)
        else:
            world = self.session._run_threads_world(size, body, config.timeout)
        missing = [rank for rank, stats in enumerate(statistics) if stats is None]
        if missing:
            raise ExecutionError(
                f"ranks {missing} finished without reporting statistics; "
                "the SPMD execution did not complete"
            )
        self._ingest_engagement(engaged)
        self._traced_move("run.gather", self._gather, buffers, fields)
        return self._attach_trace(
            self._result(list(statistics), world.statistics), tracers
        )

    def _rank_tracers(self, size: int) -> Optional[list[Tracer]]:
        if self.config.trace == "off":
            return None
        return [
            Tracer(self.config.trace, track=f"rank {rank}")
            for rank in range(size)
        ]

    def _rank_megakernels(
        self, buffers: _RunBuffers, scalars: Sequence[Any], size: int
    ) -> Optional[list[CompiledMegakernel]]:
        """Per-rank megakernels against these buffers, or None for all-planned.

        Megakernels are emitted per rank (each rank's halo plan differs)
        against the run's local buffers, before the world launches; if any
        rank cannot be emitted, every rank keeps the planned path so the SPMD
        communication pattern stays uniform.
        """
        if not (self._codegen_active and self._trace is not None):
            return None
        candidates: Optional[list[CompiledMegakernel]] = []
        for rank in range(size):
            args = [*buffers.locals[rank], *scalars]
            megakernel = self._megakernel_for(args, rank, size)
            if megakernel is None or not megakernel.matches(args):
                candidates = None
                break
            candidates.append(megakernel)
        return candidates

    def _rank_body(
        self,
        buffers: _RunBuffers,
        scalars: Sequence[Any],
        statistics: list,
        engaged: list,
        tracers: Optional[list[Tracer]],
        megakernels: Optional[list[CompiledMegakernel]],
    ):
        """One rank's SPMD body over these buffers (thread world).

        Shared verbatim by :meth:`_run_threads` and the serving layer's
        batched dispatch, so a batched job is bit-identical — fields,
        statistics, megakernel engagement — to a standalone run.
        """
        config = self.config
        team = self.session._team(config.threads_per_rank)

        def body(comm) -> None:
            tracer = tracers[comm.rank] if tracers is not None else None
            if megakernels is not None:
                args = [*buffers.locals[comm.rank], *scalars]
                stats = ExecStatistics()
                if megakernels[comm.rank].run(args, stats, comm, tracer):
                    statistics[comm.rank] = stats
                    engaged[comm.rank] = True
                    return
            interpreter = Interpreter(
                self.program.module,
                comm=comm,
                kernel=self.kernel,
                threads=config.threads_per_rank,
                overlap_halos=self.overlap,
                functions=self._functions,
                block_plans=self._block_plans,
                team=team,
                tracer=tracer,
            )
            interpreter.call_prepared(
                self._func_op, [*buffers.wrapped[comm.rank], *scalars]
            )
            statistics[comm.rank] = interpreter.stats

        return body

    def _ingest_engagement(self, engaged: Sequence[bool]) -> None:
        metrics = self.session.metrics
        metrics.inc("megakernel.engaged", sum(engaged))
        if self._codegen_active and not all(engaged):
            metrics.inc("megakernel.fallback", len(engaged) - sum(engaged))

    def _run_processes(
        self, fields: Sequence[np.ndarray], scalars: Sequence[Any]
    ) -> ExecutionResult:
        config = self.config
        buffers = self._buffers_for(fields)
        self._traced_move("run.scatter", self._scatter, buffers, fields)
        try:
            reports = self.session._pool_manager.run_program_specs(
                self.program, self.function, config.backend, buffers.specs,
                list(scalars), config.timeout, config.threads_per_rank,
                config.codegen if self._codegen_active else "planned",
                trace=config.trace,
            )
        except _process_runtime.WorkerError:
            self.session.metrics.inc("worker.errors")
            if self.tracer is not None:
                self.tracer.instant("worker.error")
            raise
        statistics, comm, rank_traces = self._process_result(buffers, reports)
        self._traced_move("run.gather", self._gather, buffers, fields)
        return self._attach_trace(self._result(statistics, comm), rank_traces)

    def _process_result(
        self, buffers: _RunBuffers, reports: Sequence[Any]
    ) -> tuple[list, CommStatistics, list]:
        """Rank statistics + merged comm (with elision accounting) from reports.

        Shared by :meth:`_run_processes` and the serving layer's process-world
        batched dispatch so both account identically.
        """
        ordered = sort_rank_stats(reports)
        statistics = [report.exec_stats for report in ordered]
        comm = merge_comm_statistics([report.comm_stats for report in ordered])
        # Copy-elision accounting: scatter wrote straight into (and gather
        # reads straight out of) the leased blocks — two memcpys per field
        # per rank elided.  On the first run of a buffer set the reuse count
        # reflects the pool's free list; afterwards every held lease is by
        # definition recycled across runs.
        comm.bytes_elided = sum(
            2 * local.nbytes for row in buffers.locals for local in row
        )
        if buffers.runs > 0:
            comm.shared_blocks_reused = self._lease_count(buffers)
        else:
            comm.shared_blocks_reused = buffers.fresh_reused
        buffers.runs += 1
        return statistics, comm, [report.trace for report in ordered]

    @staticmethod
    def _lease_count(buffers: _RunBuffers) -> int:
        return sum(len(row) for row in buffers.leases)

    def _traced_move(self, name: str, move, buffers: _RunBuffers, fields) -> None:
        """Run a scatter/gather helper under a plan-track span when tracing."""
        if self.tracer is None:
            move(buffers, fields)
            return
        span = self.tracer.begin(name)
        try:
            move(buffers, fields)
        finally:
            self.tracer.end(name, span)

    def _attach_trace(
        self, result: ExecutionResult, rank_traces: Optional[Sequence[Any]]
    ) -> ExecutionResult:
        """Merge the run's records into one timeline on ``result.trace``.

        Tracks, in order: the compile pipeline's record (captured at
        ``compile_stencil_program`` time and carried on the program), the
        session and plan lifecycle tracers, then one track per rank.  Rank
        entries may be live :class:`Tracer` instances (local/thread worlds)
        or picklable :class:`TraceRecord` payloads shipped back by process
        workers; either way their monotonic clocks are re-aligned against
        wall time by the timeline merge.
        """
        if self.config.trace == "off":
            return result
        timeline = TraceTimeline()
        timeline.add(getattr(self.program, "compile_record", None))
        session_tracer = self.session.tracer
        if session_tracer is not None:
            timeline.add(session_tracer.record())
        if self.tracer is not None:
            timeline.add(self.tracer.record())
        for entry in rank_traces or ():
            if isinstance(entry, Tracer):
                entry = entry.record()
            timeline.add(entry)
        result.trace = timeline
        self.session._last_trace = timeline
        return result

    def _result(
        self, statistics: list, comm: CommStatistics
    ) -> ExecutionResult:
        return ExecutionResult(
            statistics=statistics,
            messages_sent=comm.messages_sent,
            bytes_sent=comm.bytes_sent,
            comm_statistics=comm,
            runtime=self.runtime,
            threads_per_rank=self.config.threads_per_rank,
            runtime_requested=self.runtime_requested,
        )


class PreparedRun:
    """One job of a batched dispatch round, staged and self-contained.

    Built by :meth:`Plan.prepare`.  Construction performs the per-job front
    half of :meth:`Plan.run` — argument validation, buffer building (fresh or
    recycled, *never* the plan's shared cache), scatter, per-rank megakernel
    lookup and body construction — so a batch round only has to launch
    bodies.  After the round, :meth:`finish` replays the back half: missing-
    statistics checks, megakernel-engagement accounting, gather, trace
    attachment and the session metric ingest.  Every step calls the same
    ``Plan`` helpers the standalone path uses, so a batched job is
    bit-identical — fields, ``ExecStatistics``, ``CommStatistics`` — to the
    same job on a standalone plan.

    Thread-world (and local) jobs carry per-rank ``body(comm)`` callables for
    :meth:`Session.execute_batch`; process-world jobs carry the leased
    shared-memory ``specs`` for ``PoolManager.run_program_batch``, with the
    worker reports assigned to :attr:`reports` before ``finish()``.
    """

    def __init__(
        self,
        plan: Plan,
        fields: Sequence[np.ndarray],
        scalars: Sequence[Any],
        buffers: Optional[_RunBuffers] = None,
    ):
        self.plan = plan
        self.fields = list(fields)
        self.scalars = list(scalars)
        self.distributed = plan.distributed
        self.runtime = plan.runtime
        self.size = plan.strategy.rank_count if plan.distributed else 1
        #: The job's SimulatedMPI world (thread-world jobs; set at dispatch).
        self.world: Optional[SimulatedMPI] = None
        #: Worker reports (process-world jobs; set by the batch runner).
        self.reports: Optional[list] = None
        #: The first error of any rank of this job (leaves siblings alone).
        self.error: Optional[BaseException] = None
        self.buffers: Optional[_RunBuffers] = None

        expected = len(plan._func_op.body.block.args)
        provided = len(self.fields) + len(self.scalars)
        if provided != expected:
            raise ExecutionError(
                f"{plan.function} expects {expected} arguments, got {provided}"
            )
        self.statistics: list = [None] * self.size
        self.engaged = [False] * self.size
        self.tracers = plan._rank_tracers(self.size)

        if not self.distributed:
            tracer = self.tracers[0] if self.tracers is not None else None

            def local_body(comm=None) -> None:
                self.statistics[0] = plan._execute_local(
                    self.fields, self.scalars, tracer
                )

            self.body = local_body
            return

        for index, array in enumerate(self.fields):
            if not isinstance(array, np.ndarray):
                raise ExecutionError(
                    f"distributed field {index} is {type(array).__name__}, "
                    "not a numpy array; pass scalar arguments (e.g. the "
                    "timestep count) via the scalars sequence"
                )
        if buffers is not None and plan._buffers_valid(buffers, self.fields):
            self.buffers = buffers
        else:
            if buffers is not None:
                _release_run_buffers(buffers)
            self.buffers = plan._build_buffers(self.fields)
        plan._scatter(self.buffers, self.fields)
        if self.runtime == "processes":
            self.body = None
        else:
            megakernels = plan._rank_megakernels(
                self.buffers, self.scalars, self.size
            )
            self.body = plan._rank_body(
                self.buffers, self.scalars, self.statistics, self.engaged,
                self.tracers, megakernels,
            )

    def finish(self) -> ExecutionResult:
        """Gather and assemble the result; raises the job's recorded error."""
        if self.error is not None:
            raise self.error
        plan = self.plan
        if not self.distributed:
            stats = self.statistics[0]
            if stats is None:
                raise ExecutionError(
                    "the job finished without reporting statistics; "
                    "the batched execution did not complete"
                )
            result = plan._attach_trace(
                ExecutionResult(
                    statistics=[stats],
                    runtime="local",
                    runtime_requested="local",
                    threads_per_rank=plan.config.threads_per_rank,
                ),
                self.tracers,
            )
        elif self.runtime == "processes":
            if self.reports is None:
                raise ExecutionError(
                    "the job finished without worker reports; "
                    "the batched execution did not complete"
                )
            statistics, comm, rank_traces = plan._process_result(
                self.buffers, self.reports
            )
            plan._traced_move("run.gather", plan._gather, self.buffers, self.fields)
            result = plan._attach_trace(plan._result(statistics, comm), rank_traces)
        else:
            missing = [
                rank for rank, stats in enumerate(self.statistics)
                if stats is None
            ]
            if missing:
                raise ExecutionError(
                    f"ranks {missing} finished without reporting statistics; "
                    "the SPMD execution did not complete"
                )
            plan._ingest_engagement(self.engaged)
            plan._traced_move("run.gather", plan._gather, self.buffers, self.fields)
            result = plan._attach_trace(
                plan._result(list(self.statistics), self.world.statistics),
                self.tracers,
            )
        plan._finish_run(result)
        return result

    def release(self) -> None:
        """Release leased shared blocks (no-op for thread-world buffers)."""
        buffers = self.buffers
        self.buffers = None
        if buffers is not None:
            _release_run_buffers(buffers)


def _release_run_buffers(buffers: _RunBuffers) -> None:
    for rank_leases in buffers.leases:
        for lease in rank_leases:
            lease.release()


# ---------------------------------------------------------------------------
# the default session (compatibility surface for the deprecated shims)
# ---------------------------------------------------------------------------

_DEFAULT_SESSION: Optional[Session] = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session() -> Session:
    """The process-wide session behind ``run_local`` / ``run_distributed``.

    Shares the process-wide worker-pool manager and shared-memory field pool
    (so legacy callers keep the PR 2-4 amortization and the existing
    ``shutdown_worker_pool()`` teardown keeps working), and is replaced
    transparently if something closed it.
    """
    global _DEFAULT_SESSION
    with _DEFAULT_SESSION_LOCK:
        session = _DEFAULT_SESSION
        if session is None or session.closed:
            session = Session()
            session._pool_manager = _process_runtime.default_pool_manager()
            session._field_pool = _process_runtime.shared_field_pool()
            session._owns_runtime = False
            _DEFAULT_SESSION = session
        return session
