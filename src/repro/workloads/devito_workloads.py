"""Devito-side benchmark kernels (paper §6.1).

Two families are used in the paper:

* **heat diffusion** — a Jacobi-like stencil, first order in time:
  ``u.dt = a * u.laplace``;
* **isotropic acoustic wave** — second order accurate in time:
  ``u.dt2 = c**2 * u.laplace`` (with a constant-velocity medium here).

Both are benchmarked in 2D and 3D at space discretisation orders 2, 4 and 8,
giving 5/9/13-point stencils in 2D and 7/13/19-point stencils in 3D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..frontends.devito import Eq, Grid, Operator, TimeFunction, solve


@dataclass
class DevitoWorkload:
    """A ready-to-run Devito benchmark problem."""

    name: str
    grid: Grid
    function: TimeFunction
    equations: list[Eq]
    dt: float
    space_order: int

    def operator(self, backend: str = "xdsl", target=None) -> Operator:
        kwargs = {"backend": backend}
        if target is not None:
            kwargs["target"] = target
        return Operator(self.equations, **kwargs)

    @property
    def stencil_points(self) -> int:
        """Points of the spatial stencil (the paper's 5pt/9pt/... naming)."""
        ndim = self.grid.ndim
        return ndim * self.space_order + 1

    def initialise(self, seed: int = 0) -> None:
        """Deterministic, smooth initial conditions (shared by both back-ends)."""
        rng = np.random.default_rng(seed)
        shape = self.function.data_with_halo.shape[1:]
        smooth = rng.random(shape).astype(self.function.dtype)
        for buffer in range(self.function.buffers):
            self.function.data_with_halo[buffer][...] = smooth * 0.01
        # A localised perturbation in the middle of the domain.
        centre = tuple(extent // 2 for extent in shape)
        for buffer in range(min(2, self.function.buffers)):
            self.function.data_with_halo[buffer][centre] = 1.0


def heat_diffusion(
    shape: Sequence[int],
    space_order: int = 2,
    *,
    alpha: float = 0.5,
    dtype=np.float32,
) -> DevitoWorkload:
    """The heat-diffusion (Jacobi-like) benchmark: ``u.dt = alpha * u.laplace``."""
    grid = Grid(shape=shape)
    u = TimeFunction(name="u", grid=grid, space_order=space_order, time_order=1, dtype=dtype)
    pde = Eq(u.dt, alpha * u.laplace)
    update = Eq(u.forward, solve(pde, u.forward))
    # Stable explicit time step for the unit-extent grid.
    dt = 0.1 * min(grid.spacing) ** 2 / max(alpha, 1e-12)
    return DevitoWorkload(
        name=f"heat{len(grid.shape)}d-so{space_order}",
        grid=grid,
        function=u,
        equations=[update],
        dt=dt,
        space_order=space_order,
    )


def acoustic_wave(
    shape: Sequence[int],
    space_order: int = 4,
    *,
    velocity: float = 1.5,
    dtype=np.float32,
) -> DevitoWorkload:
    """The isotropic acoustic wave benchmark: ``u.dt2 = c^2 * u.laplace``."""
    grid = Grid(shape=shape)
    u = TimeFunction(name="u", grid=grid, space_order=space_order, time_order=2, dtype=dtype)
    pde = Eq(u.dt2, (velocity ** 2) * u.laplace)
    update = Eq(u.forward, solve(pde, u.forward))
    # CFL-limited time step.
    dt = 0.4 * min(grid.spacing) / velocity
    return DevitoWorkload(
        name=f"wave{len(grid.shape)}d-so{space_order}",
        grid=grid,
        function=u,
        equations=[update],
        dt=dt,
        space_order=space_order,
    )


#: Paper problem sizes (per platform) for figures 7-9.
PAPER_PROBLEM_SIZES = {
    ("archer2", 2): (16384, 16384),
    ("archer2", 3): (1024, 1024, 1024),
    ("cirrus-gpu", 2): (8192, 8192),
    ("cirrus-gpu", 3): (512, 512, 512),
}

#: Paper simulation lengths in time steps.
PAPER_TIMESTEPS = {2: 1024, 3: 512}

#: Space orders evaluated in the paper.
PAPER_SPACE_ORDERS = (2, 4, 8)


def paper_workload(
    kind: str, ndim: int, space_order: int, platform: str = "archer2"
) -> DevitoWorkload:
    """The benchmark exactly as sized in the paper (for the performance models)."""
    shape = PAPER_PROBLEM_SIZES[(platform, ndim)]
    if kind == "heat":
        return heat_diffusion(shape, space_order)
    if kind == "wave":
        return acoustic_wave(shape, space_order)
    raise ValueError(f"unknown Devito workload kind {kind!r}")


#: The point counts the paper's figure labels use per (ndim, space order).
_PAPER_POINT_LABELS = {
    (2, 2): 5, (2, 4): 9, (2, 8): 13,
    (3, 2): 7, (3, 4): 13, (3, 8): 19,
}


def kernel_label(kind: str, ndim: int, space_order: int) -> str:
    """The paper's kernel naming, e.g. ``heat2d-5pt`` / ``wave3d-13pt``.

    The figure labels of the paper (5/9/13-pt in 2D, 7/13/19-pt in 3D for
    space orders 2/4/8) are used verbatim; for a plain star stencil the
    so-8 cases would strictly be 17/25 points, but we keep the paper's
    labels so rows line up with the figures.
    """
    points = _PAPER_POINT_LABELS.get((ndim, space_order), ndim * space_order + 1)
    return f"{kind}{ndim}d-{points}pt"
