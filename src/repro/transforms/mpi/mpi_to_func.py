"""Lower the mpi dialect to plain function calls with library "magic constants".

LLVM has no notion of MPI, so the real stack replaces every mpi operation with
a ``func.call`` to the corresponding ``MPI_*`` symbol, substituting datatype
and communicator handles with the integer constants found in the MPI library's
header (paper §4.3, listing 4).  The constants used here are the mpich ABI
values quoted in the paper; switching libraries means switching this table.
"""

from __future__ import annotations


from ...dialects import arith, func, llvm, memref, mpi
from ...dialects.builtin import ModuleOp
from ...ir.attributes import IntegerAttr
from ...ir.builder import Builder
from ...ir.context import MLContext
from ...ir.core import Operation, SSAValue
from ...ir.pass_manager import ModulePass, PassRegistry
from ...ir.types import Float32Type, Float64Type, IntegerType, MemRefType, i32, i64

#: mpich magic constants (the values the paper extracts from mpi.h).
MPICH_COMM_WORLD = 0x44000000  # 1140850688
MPICH_DATATYPE_CONSTANTS = {
    "f32": 0x4C00040A,  # MPI_FLOAT
    "f64": 0x4C00080B,  # MPI_DOUBLE  (1275070475 in the paper's listing 4)
    "i32": 0x4C000405,  # MPI_INT
    "i64": 0x4C000816,  # MPI_LONG_LONG
}
MPICH_REQUEST_NULL = 0x2C000000
MPICH_STATUS_IGNORE = 1
MPICH_OP_CONSTANTS = {
    "sum": 0x58000003,
    "prod": 0x58000004,
    "min": 0x58000002,
    "max": 0x58000001,
    "land": 0x58000005,
    "lor": 0x58000007,
}


def datatype_constant_for(element_type) -> int:
    """The mpich datatype handle for a scalar element type."""
    if isinstance(element_type, Float64Type):
        return MPICH_DATATYPE_CONSTANTS["f64"]
    if isinstance(element_type, Float32Type):
        return MPICH_DATATYPE_CONSTANTS["f32"]
    if isinstance(element_type, IntegerType) and element_type.width == 64:
        return MPICH_DATATYPE_CONSTANTS["i64"]
    if isinstance(element_type, IntegerType):
        return MPICH_DATATYPE_CONSTANTS["i32"]
    raise ValueError(f"no MPI datatype for element type {element_type}")


class _MPILoweringState:
    """Tracks which external MPI function declarations have been added."""

    def __init__(self, module: ModuleOp):
        self.module = module
        self._declared: dict[str, func.FuncOp] = {}
        for op in module.walk():
            if isinstance(op, func.FuncOp) and op.is_declaration:
                self._declared[op.sym_name] = op

    def declare(self, name: str, inputs, outputs) -> None:
        if name in self._declared:
            return
        declaration = func.FuncOp.external(name, inputs, outputs)
        self.module.body.block.add_op(declaration)
        self._declared[name] = declaration


def _lower_unwrap_memref(op: mpi.UnwrapMemrefOp, builder: Builder) -> dict[SSAValue, SSAValue]:
    """Expand unwrap_memref into pointer extraction and constants (listing 4)."""
    memref_value = op.memref
    memref_type = memref_value.type
    assert isinstance(memref_type, MemRefType)
    base_index = builder.insert(memref.ExtractAlignedPointerAsIndexOp(memref_value))
    as_i64 = builder.insert(arith.IndexCastOp(base_index.result, i64))
    pointer = builder.insert(llvm.IntToPtrOp(as_i64.result))
    count = builder.insert(
        arith.ConstantOp(IntegerAttr(memref_type.element_count(), i32), i32)
    )
    datatype = builder.insert(
        arith.ConstantOp(
            IntegerAttr(datatype_constant_for(memref_type.element_type), i32), i32
        )
    )
    return {
        op.ptr: pointer.result,
        op.count: count.result,
        op.dtype: datatype.result,
    }


def lower_mpi_to_func(module: ModuleOp) -> int:
    """Replace mpi ops with func.call operations; return the number lowered."""
    state = _MPILoweringState(module)
    lowered = 0

    for op in list(module.walk()):
        if op.parent is None or not op.name.startswith("mpi."):
            continue
        builder = Builder.before(op)
        lowered += 1

        if isinstance(op, mpi.UnwrapMemrefOp):
            replacements = _lower_unwrap_memref(op, builder)
            for old, new in replacements.items():
                old.replace_by(new)
            op.erase()
            continue

        if isinstance(op, mpi.InitOp):
            state.declare("MPI_Init", [llvm.LLVMPointerType(), llvm.LLVMPointerType()], [i32])
            null = builder.insert(llvm.NullOp()).result
            builder.insert(func.CallOp("MPI_Init", [null, null], [i32]))
            op.erase()
            continue
        if isinstance(op, mpi.FinalizeOp):
            state.declare("MPI_Finalize", [], [i32])
            builder.insert(func.CallOp("MPI_Finalize", [], [i32]))
            op.erase()
            continue
        if isinstance(op, (mpi.CommRankOp, mpi.CommSizeOp)):
            symbol = "MPI_Comm_rank" if isinstance(op, mpi.CommRankOp) else "MPI_Comm_size"
            state.declare(symbol, [i32], [i32])
            comm = builder.insert(
                arith.ConstantOp(IntegerAttr(MPICH_COMM_WORLD, i32), i32)
            ).result
            call = builder.insert(func.CallOp(symbol, [comm], [i32]))
            op.results[0].replace_by(call.results[0])
            op.erase()
            continue
        if isinstance(op, (mpi.SendOp, mpi.RecvOp)):
            symbol = "MPI_Send" if isinstance(op, mpi.SendOp) else "MPI_Recv"
            state.declare(
                symbol, [llvm.LLVMPointerType(), i32, i32, i32, i32, i32], [i32]
            )
            comm = builder.insert(
                arith.ConstantOp(IntegerAttr(MPICH_COMM_WORLD, i32), i32)
            ).result
            builder.insert(
                func.CallOp(
                    symbol,
                    [op.buffer, op.count, op.datatype, op.peer, op.tag, comm],
                    [i32],
                )
            )
            op.erase()
            continue
        if isinstance(op, (mpi.IsendOp, mpi.IrecvOp)):
            symbol = "MPI_Isend" if isinstance(op, mpi.IsendOp) else "MPI_Irecv"
            state.declare(
                symbol,
                [llvm.LLVMPointerType(), i32, i32, i32, i32, i32, llvm.LLVMPointerType()],
                [i32],
            )
            comm = builder.insert(
                arith.ConstantOp(IntegerAttr(MPICH_COMM_WORLD, i32), i32)
            ).result
            request = op.request
            assert request is not None
            builder.insert(
                func.CallOp(
                    symbol,
                    [op.buffer, op.count, op.datatype, op.peer, op.tag, comm, request],
                    [i32],
                )
            )
            op.erase()
            continue
        if isinstance(op, mpi.WaitOp):
            state.declare("MPI_Wait", [llvm.LLVMPointerType(), i32], [i32])
            status = builder.insert(
                arith.ConstantOp(IntegerAttr(MPICH_STATUS_IGNORE, i32), i32)
            ).result
            builder.insert(func.CallOp("MPI_Wait", [op.operands[0], status], [i32]))
            op.erase()
            continue
        if isinstance(op, mpi.WaitallOp):
            state.declare("MPI_Waitall", [i32, llvm.LLVMPointerType(), i32], [i32])
            status = builder.insert(
                arith.ConstantOp(IntegerAttr(MPICH_STATUS_IGNORE, i32), i32)
            ).result
            builder.insert(
                func.CallOp("MPI_Waitall", [op.count, op.requests, status], [i32])
            )
            op.erase()
            continue
        if isinstance(op, (mpi.ReduceOp, mpi.AllreduceOp)):
            is_reduce = isinstance(op, mpi.ReduceOp)
            symbol = "MPI_Reduce" if is_reduce else "MPI_Allreduce"
            arg_types = [llvm.LLVMPointerType(), llvm.LLVMPointerType(), i32, i32, i32]
            if is_reduce:
                arg_types.append(i32)
            arg_types.append(i32)
            state.declare(symbol, arg_types, [i32])
            reduction = builder.insert(
                arith.ConstantOp(IntegerAttr(MPICH_OP_CONSTANTS[op.operation], i32), i32)
            ).result
            comm = builder.insert(
                arith.ConstantOp(IntegerAttr(MPICH_COMM_WORLD, i32), i32)
            ).result
            arguments = [op.send_buffer, op.recv_buffer, op.count, op.datatype, reduction]
            if is_reduce:
                root = op.root
                assert root is not None
                arguments.append(root)
            arguments.append(comm)
            builder.insert(func.CallOp(symbol, arguments, [i32]))
            op.erase()
            continue
        if isinstance(op, mpi.BcastOp):
            state.declare(
                "MPI_Bcast", [llvm.LLVMPointerType(), i32, i32, i32, i32], [i32]
            )
            comm = builder.insert(
                arith.ConstantOp(IntegerAttr(MPICH_COMM_WORLD, i32), i32)
            ).result
            builder.insert(
                func.CallOp(
                    "MPI_Bcast",
                    [op.operands[0], op.operands[1], op.operands[2], op.operands[3], comm],
                    [i32],
                )
            )
            op.erase()
            continue
        if isinstance(op, mpi.GatherOp):
            state.declare(
                "MPI_Gather",
                [llvm.LLVMPointerType(), i32, i32, llvm.LLVMPointerType(), i32, i32, i32, i32],
                [i32],
            )
            comm = builder.insert(
                arith.ConstantOp(IntegerAttr(MPICH_COMM_WORLD, i32), i32)
            ).result
            builder.insert(
                func.CallOp(
                    "MPI_Gather",
                    [
                        op.send_buffer, op.operands[2], op.operands[3],
                        op.recv_buffer, op.operands[2], op.operands[3],
                        op.root, comm,
                    ],
                    [i32],
                )
            )
            op.erase()
            continue
        if isinstance(op, mpi.BarrierOp):
            state.declare("MPI_Barrier", [i32], [i32])
            comm = builder.insert(
                arith.ConstantOp(IntegerAttr(MPICH_COMM_WORLD, i32), i32)
            ).result
            builder.insert(func.CallOp("MPI_Barrier", [comm], [i32]))
            op.erase()
            continue
        # Request-array bookkeeping ops (allocate/get/null) stay as-is: they
        # model plain stack allocations and pointer arithmetic that need no
        # library call, and the interpreter executes them directly.
        lowered -= 1

    return lowered


class ConvertMPIToFuncPass(ModulePass):
    """Lower mpi operations to MPI_* function calls with mpich magic constants."""

    name = "convert-mpi-to-llvm"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        assert isinstance(module, ModuleOp)
        lower_mpi_to_func(module)


PassRegistry.register("convert-mpi-to-llvm", ConvertMPIToFuncPass)
