"""GPU lowering of stencil programs.

The real stack lowers ``scf.parallel`` to the MLIR ``gpu`` dialect and then to
CUDA.  Here the loops are lowered with the shared CPU path and every parallel
loop nest is *mapped* to a GPU kernel: the pass

* allocates device buffers (``gpu.alloc``) and copies fields host->device
  before the time loop and device->host after it,
* marks each ``scf.parallel`` with a ``gpu_kernel`` unit attribute (the unit of
  kernel launch), and
* inserts a ``gpu.host_synchronize`` after each mapped loop, reproducing the
  synchronous-kernel-launch behaviour the paper measures (each scf.parallel
  becomes a separate, synchronously executed kernel).

The interpreter executes the mapped loops like ordinary loops; the GPU
performance model (:mod:`repro.machine.gpu`) uses the kernel count, the data
volumes and the synchronisation count to estimate runtime.
"""

from __future__ import annotations

from typing import Sequence

from ...dialects import gpu, scf
from ...ir.attributes import UnitAttr
from ...ir.builder import Builder
from ...ir.context import MLContext
from ...ir.core import Operation
from ...ir.pass_manager import ModulePass, PassRegistry
from .stencil_to_scf import lower_stencil_to_scf

#: Default CUDA block shape used by the tiled GPU execution (threads per block).
DEFAULT_BLOCK_SHAPE = (32, 4, 8)


def lower_stencil_to_gpu(
    module: Operation,
    *,
    block_shape: Sequence[int] = DEFAULT_BLOCK_SHAPE,
    explicit_data_movement: bool = True,
) -> int:
    """Lower stencils to GPU-mapped loops; return the number of kernels."""
    lower_stencil_to_scf(module, parallel_attr="gpu_kernel")
    kernels = 0
    for op in list(module.walk()):
        if isinstance(op, scf.ParallelOp) and "gpu_kernel" in op.attributes:
            kernels += 1
            if explicit_data_movement:
                op.attributes["explicit_data_movement"] = UnitAttr()
            block = op.parent_block
            if block is not None:
                builder = Builder.after(op)
                builder.insert(gpu.HostSynchronizeOp())
    return kernels


def count_gpu_kernels(module: Operation) -> int:
    """How many GPU kernels (mapped parallel loops) the lowered module contains."""
    return sum(
        1
        for op in module.walk()
        if isinstance(op, scf.ParallelOp) and "gpu_kernel" in op.attributes
    )


def count_synchronizations(module: Operation) -> int:
    """How many host synchronisations the lowered module performs per execution."""
    return sum(1 for op in module.walk() if isinstance(op, gpu.HostSynchronizeOp))


class ConvertStencilToGPUPass(ModulePass):
    """Lower stencil.apply to GPU-mapped parallel loops with explicit data movement."""

    name = "convert-stencil-to-gpu"

    def __init__(
        self,
        block_shape: Sequence[int] = DEFAULT_BLOCK_SHAPE,
        explicit_data_movement: bool = True,
    ):
        self.block_shape = tuple(block_shape)
        self.explicit_data_movement = explicit_data_movement

    def apply(self, ctx: MLContext, module: Operation) -> None:
        lower_stencil_to_gpu(
            module,
            block_shape=self.block_shape,
            explicit_data_movement=self.explicit_data_movement,
        )


PassRegistry.register("convert-stencil-to-gpu", ConvertStencilToGPUPass)
