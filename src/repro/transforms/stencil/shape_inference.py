"""Stencil shape inference.

Propagates bounds information through a stencil program:

* the bounds of each ``stencil.apply`` result are the bounds of the store that
  consumes it;
* each apply *input* must cover the store bounds grown by the access offsets
  used on it (the stencil footprint);
* ``stencil.load`` results inherit the bounds required by their consumers, and
  the loaded field must contain them.

Because the paper's redesigned dialect attaches bounds to types, this pass
simply retypes SSA values in place.
"""

from __future__ import annotations

from ...dialects import stencil
from ...ir.context import MLContext
from ...ir.core import Operation
from ...ir.pass_manager import ModulePass, PassRegistry


class ShapeInferenceError(Exception):
    """Raised when bounds cannot be inferred or are inconsistent."""


def _required_input_bounds(
    apply_op: stencil.ApplyOp, output_bounds: stencil.StencilBoundsAttr
) -> dict[int, stencil.StencilBoundsAttr]:
    """Bounds each operand must cover, derived from the access offsets."""
    required: dict[int, stencil.StencilBoundsAttr] = {}
    for operand_index, offsets in apply_op.access_offsets().items():
        rank = output_bounds.rank
        lower_growth = [0] * rank
        upper_growth = [0] * rank
        for offset in offsets:
            for dim, component in enumerate(offset):
                lower_growth[dim] = max(lower_growth[dim], max(0, -component))
                upper_growth[dim] = max(upper_growth[dim], max(0, component))
        required[operand_index] = stencil.StencilBoundsAttr(
            [l - g for l, g in zip(output_bounds.lb, lower_growth)],
            [u + g for u, g in zip(output_bounds.ub, upper_growth)],
        )
    return required


def infer_shapes(module: Operation) -> int:
    """Infer and attach bounds to every stencil temp; return the number retyped."""
    retyped = 0
    for apply_op in stencil.apply_ops_of(module):
        # 1. Output bounds come from the consuming stores.
        output_bounds: stencil.StencilBoundsAttr | None = None
        for result in apply_op.results:
            for use in result.uses:
                if isinstance(use.operation, stencil.StoreOp):
                    store_bounds = use.operation.bounds
                    if output_bounds is None:
                        output_bounds = store_bounds
                    elif output_bounds != store_bounds:
                        raise ShapeInferenceError(
                            "results of one stencil.apply are stored with "
                            "inconsistent bounds"
                        )
        if output_bounds is None:
            continue
        for result in apply_op.results:
            result_type = result.type
            assert isinstance(result_type, stencil.TempType)
            if result_type.bounds != output_bounds:
                result.type = stencil.TempType(output_bounds, result_type.element_type)
                retyped += 1

        # 2. Input bounds are the output bounds grown by the stencil footprint.
        required = _required_input_bounds(apply_op, output_bounds)
        for operand_index, bounds in required.items():
            operand = apply_op.operands[operand_index]
            operand_type = operand.type
            if not isinstance(operand_type, stencil.TempType):
                continue
            if operand_type.bounds is None or not operand_type.bounds.contains(bounds):
                new_bounds = (
                    bounds
                    if operand_type.bounds is None
                    else stencil.StencilBoundsAttr(
                        [min(a, b) for a, b in zip(operand_type.bounds.lb, bounds.lb)],
                        [max(a, b) for a, b in zip(operand_type.bounds.ub, bounds.ub)],
                    )
                )
                operand.type = stencil.TempType(new_bounds, operand_type.element_type)
                retyped += 1
            # Keep the apply region argument types in sync with the operands.
            region_arg = apply_op.region_args[operand_index]
            if region_arg.type != operand.type:
                region_arg.type = operand.type
                retyped += 1

        # 3. Check the loaded fields can provide the required bounds.
        for operand_index, bounds in required.items():
            operand = apply_op.operands[operand_index]
            owner = operand.owner
            if isinstance(owner, stencil.LoadOp):
                field_type = owner.field.type
                if (
                    isinstance(field_type, stencil.FieldType)
                    and field_type.bounds is not None
                    and not field_type.bounds.contains(bounds)
                ):
                    raise ShapeInferenceError(
                        f"stencil.load of field with bounds {field_type.bounds} cannot "
                        f"provide the required bounds {bounds} (missing halo?)"
                    )
    return retyped


class StencilShapeInferencePass(ModulePass):
    """Attach inferred bounds to stencil temps (paper §4.1 type-carried bounds)."""

    name = "stencil-shape-inference"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        infer_shapes(module)


PassRegistry.register("stencil-shape-inference", StencilShapeInferencePass)
