"""Tests for the Session/Plan execution API (repro.core.session).

Covers the satellite checklist of the API redesign: ExecutionConfig
validation, session lifecycle (double-close, run-after-close, resource-reuse
counters), plan hot-path parity against the deprecated shims across the
{threads, processes} x {1, 2 threads_per_rank} matrix, shim deprecation
warnings, and the runtime-fallback warning.
"""

import warnings

import numpy as np
import pytest

from repro.core import (
    ExecutionConfig,
    ExecutionError,
    RuntimeFallbackWarning,
    Session,
    compile_stencil_program,
    cpu_target,
    default_session,
    dmp_target,
    run_distributed,
    run_local,
)
from repro.runtime import processes_available, shutdown_worker_pool
from repro.workloads import heat_diffusion
from tests.conftest import build_jacobi_module, jacobi_reference

needs_processes = pytest.mark.skipif(
    not processes_available(), reason="process runtime unavailable on this platform"
)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    shutdown_worker_pool()


def _compile_heat(rank_grid, shape=(16, 16)):
    workload = heat_diffusion(shape, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    return compile_stencil_program(module, dmp_target(rank_grid))


def _heat_fields(shape=(18, 18)):
    u0 = np.zeros(shape)
    u0[shape[0] // 2 - 1: shape[0] // 2 + 1,
       shape[1] // 2 - 1: shape[1] // 2 + 1] = 1.0
    return [u0, u0.copy()]


# ---------------------------------------------------------------------------
# ExecutionConfig validation
# ---------------------------------------------------------------------------

class TestExecutionConfig:
    def test_defaults_valid(self):
        config = ExecutionConfig()
        assert config.backend == "auto" and config.runtime == "threads"
        assert config.resolved_overlap() is True

    def test_bad_backend(self):
        with pytest.raises(ExecutionError, match="unknown execution backend"):
            ExecutionConfig(backend="jit")

    def test_bad_runtime(self):
        with pytest.raises(ExecutionError, match="unknown execution runtime"):
            ExecutionConfig(runtime="mpi")

    @pytest.mark.parametrize("threads", [0, -1, 1.5, "two"])
    def test_bad_threads_per_rank(self, threads):
        with pytest.raises(ExecutionError, match="threads_per_rank"):
            ExecutionConfig(threads_per_rank=threads)

    @pytest.mark.parametrize("ranks", [0, -2, 2.5])
    def test_bad_ranks(self, ranks):
        with pytest.raises(ExecutionError, match="ranks"):
            ExecutionConfig(ranks=ranks)

    @pytest.mark.parametrize("timeout", [0, -3, "fast"])
    def test_bad_timeout(self, timeout):
        with pytest.raises(ExecutionError, match="timeout"):
            ExecutionConfig(timeout=timeout)

    def test_conflicting_overlap_flags(self):
        with pytest.raises(ExecutionError, match="overlap_halos.*interpreter"):
            ExecutionConfig(backend="interpreter", overlap_halos=True)

    def test_overlap_auto_resolution(self):
        assert ExecutionConfig(backend="interpreter").resolved_overlap() is False
        assert ExecutionConfig(backend="auto").resolved_overlap() is True
        assert ExecutionConfig(overlap_halos=False).resolved_overlap() is False

    def test_bad_overlap_value(self):
        with pytest.raises(ExecutionError, match="overlap_halos"):
            ExecutionConfig(overlap_halos="sometimes")

    def test_negative_margin(self):
        with pytest.raises(ExecutionError, match="margin"):
            ExecutionConfig(margin=(1, -1))

    def test_margin_normalized_to_ints(self):
        assert ExecutionConfig(margin=[2.0, 3]).margin == (2, 3)

    def test_replace_revalidates(self):
        config = ExecutionConfig()
        with pytest.raises(ExecutionError, match="unknown execution runtime"):
            config.replace(runtime="gpu")
        assert config.replace(runtime="processes").runtime == "processes"

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(ExecutionError, match="unknown ExecutionConfig field"):
            ExecutionConfig().replace(nranks=4)

    def test_plan_rejects_rank_mismatch(self):
        program = _compile_heat((2, 2))
        with Session() as session:
            with pytest.raises(ExecutionError, match="rank grid"):
                session.plan(program, config=ExecutionConfig(ranks=3))


# ---------------------------------------------------------------------------
# session lifecycle
# ---------------------------------------------------------------------------

class TestSessionLifecycle:
    def test_double_close_is_idempotent(self):
        session = Session()
        session.close()
        session.close()  # no error
        assert session.closed

    def test_run_after_close_raises(self):
        program = _compile_heat((2, 1))
        session = Session()
        session.close()
        with pytest.raises(ExecutionError, match="session is closed"):
            session.run(program, _heat_fields(), [1])
        with pytest.raises(ExecutionError, match="session is closed"):
            session.plan(program)
        with pytest.raises(ExecutionError, match="session is closed"):
            session.warmup(ranks=2)

    def test_plan_run_after_session_close_raises(self):
        program = _compile_heat((2, 1))
        session = Session()
        plan = session.plan(program)
        session.close()
        assert plan.closed  # session close closes its plans
        with pytest.raises(ExecutionError, match="plan is closed"):
            plan.run(_heat_fields(), [1])

    def test_context_manager_closes(self):
        with Session() as session:
            assert not session.closed
        assert session.closed

    def test_rank_executor_reused_across_runs(self):
        program = _compile_heat((2, 1))
        with Session() as session:
            plan = session.plan(program)
            for _ in range(4):
                plan.run(_heat_fields(), [2])
            assert session.counters.runs_completed == 4
            assert session.counters.rank_executors_created == 1
            assert plan.runs_completed == 4

    def test_plan_buffers_cached_across_runs(self):
        program = _compile_heat((2, 1))
        with Session() as session:
            plan = session.plan(program)
            fields = _heat_fields()
            plan.run(fields, [2])
            buffers = plan._buffers
            assert buffers is not None
            plan.run(_heat_fields(), [2])
            assert plan._buffers is buffers, "same shapes must reuse the buffers"
            reference = _heat_fields()
            run_with_shims_silenced(program, reference, [2])
            repeated = _heat_fields()
            plan.run(repeated, [2])
            assert np.array_equal(repeated[0], reference[0])
            assert np.array_equal(repeated[1], reference[1])

    def test_session_runs_local_programs_too(self):
        module = build_jacobi_module()
        program = compile_stencil_program(module, cpu_target())
        data = np.zeros(10)
        data[1:9] = np.arange(8, dtype=float)
        a, b = data.copy(), data.copy()
        with Session() as session:
            plan = session.plan(program)
            result = plan.run([a, b], [3])
        assert result.runtime == "local" and not result.degraded
        assert np.allclose(b, jacobi_reference(data, 3))


def run_with_shims_silenced(program, fields, scalars, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return run_distributed(program, fields, scalars, **kwargs)


# ---------------------------------------------------------------------------
# hot-path parity vs the shims: {threads, processes} x {1, 2 threads_per_rank}
# ---------------------------------------------------------------------------

PARITY_CELLS = [
    ("threads", 1), ("threads", 2),
    pytest.param("processes", 1, marks=needs_processes),
    pytest.param("processes", 2, marks=needs_processes),
]


@pytest.mark.parametrize("runtime,threads_per_rank", PARITY_CELLS)
def test_plan_matches_shim_bit_identically(runtime, threads_per_rank):
    """plan.run == run_distributed: fields, ExecStatistics and CommStatistics."""
    program = _compile_heat((2, 2))
    shim_fields = _heat_fields()
    shim = run_with_shims_silenced(
        program, shim_fields, [3],
        runtime=runtime, threads_per_rank=threads_per_rank,
    )
    with Session(runtime=runtime, threads_per_rank=threads_per_rank) as session:
        plan = session.plan(program)
        for repeat in range(3):  # repeated runs reuse buffers and must agree
            plan_fields = _heat_fields()
            result = plan.run(plan_fields, [3])
            for mine, theirs in zip(plan_fields, shim_fields):
                assert np.array_equal(mine, theirs), (
                    f"{runtime} x{threads_per_rank} repeat {repeat}: "
                    "fields diverged from the shim path"
                )
            assert result.statistics == shim.statistics
            assert result.comm_statistics == shim.comm_statistics
            assert result.messages_sent == shim.messages_sent > 0
            assert result.runtime == shim.runtime == runtime
            assert result.threads_per_rank == threads_per_rank


def test_plan_local_matches_run_local_shim():
    module = build_jacobi_module()
    program = compile_stencil_program(module, cpu_target())
    data = np.zeros(10)
    data[1:9] = np.arange(8, dtype=float)
    a1, b1 = data.copy(), data.copy()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = run_local(program, [a1, b1, 4])
    a2, b2 = data.copy(), data.copy()
    with Session() as session:
        result = session.plan(program).run([a2, b2], [4])
    assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
    assert result.statistics == shim.statistics


@needs_processes
def test_plan_holds_leases_across_runs():
    """A held plan's shared blocks persist: every re-run reuses all of them."""
    shutdown_worker_pool()  # reset the default pools; session owns its own
    program = _compile_heat((2, 1))
    with Session(runtime="processes") as session:
        plan = session.plan(program)
        first = plan.run(_heat_fields(), [2])
        assert first.comm_statistics.bytes_elided > 0
        second = plan.run(_heat_fields(), [2])
        # 2 ranks x 2 fields leased once and kept across runs.
        assert second.comm_statistics.shared_blocks_reused == 4
        assert session.worker_pools_created == 1


# ---------------------------------------------------------------------------
# shim deprecation warnings + runtime fallback warning
# ---------------------------------------------------------------------------

def test_run_local_shim_warns_deprecated():
    module = build_jacobi_module()
    program = compile_stencil_program(module, cpu_target())
    data = np.zeros(10)
    with pytest.warns(DeprecationWarning, match="Session/Plan"):
        run_local(program, [data.copy(), data.copy(), 1])


def test_run_distributed_shim_warns_deprecated():
    program = _compile_heat((2, 1))
    with pytest.warns(DeprecationWarning, match="Session/Plan"):
        run_distributed(program, _heat_fields(), [1])


def test_fallback_warns_and_records_request(monkeypatch):
    import repro.runtime as runtime_module

    monkeypatch.setattr(runtime_module, "processes_available", lambda: False)
    program = _compile_heat((2, 1))
    with Session() as session:
        with pytest.warns(RuntimeFallbackWarning, match="falling back"):
            result = session.run(program, _heat_fields(), [1], runtime="processes")
    assert result.runtime == "threads"
    assert result.runtime_requested == "processes"
    assert result.degraded
    assert result.messages_sent > 0


def test_no_fallback_warning_when_runtime_honoured():
    program = _compile_heat((2, 1))
    with Session() as session:
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeFallbackWarning)
            result = session.run(program, _heat_fields(), [1], runtime="threads")
    assert result.runtime == result.runtime_requested == "threads"
    assert not result.degraded


# ---------------------------------------------------------------------------
# warm-up
# ---------------------------------------------------------------------------

def test_threads_warmup_prespawns_executor_and_team():
    program = _compile_heat((2, 1))
    with Session(runtime="threads", ranks=2, threads_per_rank=2) as session:
        session.warmup()
        assert session.counters.warmups == 1
        assert session.counters.rank_executors_created == 1
        assert session.counters.thread_teams_created == 1
        plan = session.plan(program)
        plan.run(_heat_fields(), [2])
        # The first run found everything already spawned.
        assert session.counters.rank_executors_created == 1
        assert session.counters.thread_teams_created == 1


def test_warm_start_config_warms_on_enter():
    with Session(ranks=2, warm_start=True) as session:
        assert session.counters.warmups == 1


@needs_processes
def test_process_warmup_prespawns_pool_and_ships_program():
    program = _compile_heat((2, 1))
    with Session(runtime="processes") as session:
        plan = session.plan(program)
        plan.warmup()
        assert session.worker_pools_created == 1
        pool = session._pool_manager.pool
        shipped = pool.programs_shipped
        assert shipped == 2  # one copy per worker, shipped at warm-up
        plan.run(_heat_fields(), [2])
        # The run spawned nothing and shipped nothing new.
        assert session.worker_pools_created == 1
        assert session._pool_manager.pool is pool
        assert pool.programs_shipped == shipped


@needs_processes
def test_plan_warmup_honours_plan_runtime_override():
    """A plan's runtime override (not the session default) gets warmed."""
    program = _compile_heat((2, 1))
    with Session() as session:  # session default: threads
        plan = session.plan(program, runtime="processes")
        plan.warmup()
        assert session.worker_pools_created == 1, (
            "plan.warmup() must pre-spawn the plan's runtime, not the session's"
        )
        pool = session._pool_manager.pool
        assert pool is not None and pool.programs_shipped == 2
        plan.run(_heat_fields(), [1])
        assert session.worker_pools_created == 1
        assert pool.programs_shipped == 2


def test_plan_rejects_scalar_in_fields():
    """Scalars mixed into the distributed fields list get a clear error."""
    program = _compile_heat((2, 1))
    with Session() as session:
        plan = session.plan(program)
        u0, u1 = _heat_fields()
        with pytest.raises(ExecutionError, match="not a numpy array"):
            plan.run([u0, u1, 2])  # timesteps belongs in scalars


def test_concurrent_runs_on_one_plan_serialize():
    """Two caller threads sharing one plan must not corrupt each other."""
    import threading

    program = _compile_heat((2, 1))
    reference = _heat_fields()
    run_with_shims_silenced(program, reference, [2])
    with Session() as session:
        plan = session.plan(program)
        errors = []

        def hammer():
            try:
                for _ in range(4):
                    fields = _heat_fields()
                    plan.run(fields, [2])
                    assert np.array_equal(fields[0], reference[0])
                    assert np.array_equal(fields[1], reference[1])
            except Exception as err:  # noqa: BLE001 - assert in the main thread
                errors.append(err)

        callers = [threading.Thread(target=hammer) for _ in range(2)]
        for caller in callers:
            caller.start()
        for caller in callers:
            caller.join(timeout=120)
        assert not errors, f"concurrent plan runs corrupted results: {errors}"


# ---------------------------------------------------------------------------
# shims keep legacy error behaviour
# ---------------------------------------------------------------------------

def test_shim_rejects_non_distributed_program():
    module = build_jacobi_module()
    program = compile_stencil_program(module, cpu_target())
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(ExecutionError, match="not compiled for a distributed"):
            run_distributed(program, [np.zeros(10)], [1])


def test_default_session_is_replaced_after_close():
    first = default_session()
    first.close()
    second = default_session()
    assert second is not first and not second.closed
