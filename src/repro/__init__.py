"""repro: a reproduction of "A shared compilation stack for distributed-memory
parallelism in stencil DSLs" (ASPLOS 2024).

Package layout:

* :mod:`repro.ir` — the SSA+Regions IR core (the xDSL-like substrate).
* :mod:`repro.dialects` — builtin/arith/func/scf/memref/omp/gpu/hls plus the
  paper's stencil, dmp and mpi dialects.
* :mod:`repro.transforms` — optimisations and lowerings (stencil->loops,
  global-to-local decomposition, dmp->mpi, mpi->library calls, scf->OpenMP...).
* :mod:`repro.interp` — the IR interpreter and the thread-backed simulated
  MPI runtime.
* :mod:`repro.runtime` — the OS-process SPMD runtime: shared-memory fields
  and a persistent worker pool for real multi-core strong scaling.
* :mod:`repro.machine` — performance models of ARCHER2, Slingshot, V100, U280.
* :mod:`repro.frontends` — miniature Devito, PSyclone and OEC-style frontends.
* :mod:`repro.core` — targets, the shared pipeline and executors.
* :mod:`repro.serve` — the multi-tenant serving layer: one warm session,
  admission control, cross-tenant plan sharing and batched dispatch.
* :mod:`repro.workloads` / :mod:`repro.evaluation` — the paper's benchmarks and
  the harness regenerating its tables and figures.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
