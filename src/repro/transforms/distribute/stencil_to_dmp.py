"""The global-to-local pass: distribute a stencil program over MPI ranks.

This is the "shared pass that automatically prepares stencil programs for
distributed execution" of paper §4.2.  Given a rank topology and a
decomposition strategy it

1. computes the halo each field needs from the ``stencil.access`` offsets of
   every ``stencil.apply`` in the function,
2. rewrites every ``!stencil.field`` (and dependent temp) type from the global
   bounds to the rank-local bounds (core at ``[0, n)`` plus halo),
3. shrinks every ``stencil.store`` range to the local core, and
4. inserts a ``dmp.swap`` in front of every ``stencil.load`` so neighbouring
   ranks hold up-to-date halo data before each stencil computation.

The produced module is SPMD: every rank executes the same IR; which slab of
the global domain a rank owns is decided by the runtime (data scatter/gather
in the executor) and by the neighbour checks emitted when lowering dmp to mpi.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...dialects import func, stencil
from ...dialects.builtin import UnrealizedConversionCastOp
from ...dialects.dmp import SwapOp
from ...ir.builder import Builder
from ...ir.context import MLContext
from ...ir.core import Operation, SSAValue
from ...ir.pass_manager import ModulePass
from ...ir.types import FunctionType, MemRefType
from ..stencil.shape_inference import infer_shapes
from .decomposition import DecompositionError, DecompositionStrategy, LocalDomain


@dataclass
class DistributionSummary:
    """What the global-to-local pass did (used by tests and the cost model)."""

    global_shape: tuple[int, ...]
    local_domain: LocalDomain
    swaps_inserted: int
    halo_elements_per_swap: int


def _collect_global_bounds(module: Operation) -> stencil.StencilBoundsAttr:
    """The common store bounds of the program == the global compute domain."""
    bounds: Optional[stencil.StencilBoundsAttr] = None
    for op in module.walk():
        if isinstance(op, stencil.StoreOp):
            if bounds is None:
                bounds = op.bounds
            elif bounds != op.bounds:
                raise DecompositionError(
                    "all stencil.store operations must share the same global bounds "
                    "to be distributed automatically"
                )
    if bounds is None:
        raise DecompositionError("no stencil.store found; nothing to distribute")
    return bounds


def _retype_fields(module: Operation, new_bounds: stencil.StencilBoundsAttr) -> int:
    """Give every field-typed SSA value the local bounds; returns the count."""
    retyped = 0

    def new_field_type(old: stencil.FieldType) -> stencil.FieldType:
        return stencil.FieldType(new_bounds, old.element_type)

    for op in module.walk():
        for result in op.results:
            if isinstance(result.type, stencil.FieldType):
                result.type = new_field_type(result.type)
                retyped += 1
        for region in op.regions:
            for block in region.blocks:
                for arg in block.args:
                    if isinstance(arg.type, stencil.FieldType):
                        arg.type = new_field_type(arg.type)
                        retyped += 1
        if isinstance(op, func.FuncOp):
            ftype = op.function_type
            new_inputs = [
                new_field_type(t) if isinstance(t, stencil.FieldType) else t
                for t in ftype.inputs
            ]
            new_outputs = [
                new_field_type(t) if isinstance(t, stencil.FieldType) else t
                for t in ftype.outputs
            ]
            op.attributes["function_type"] = FunctionType(new_inputs, new_outputs)
    return retyped


def _reset_temp_types(module: Operation) -> None:
    """Drop stale (global) bounds from temps so shape inference recomputes them."""
    for op in module.walk():
        if isinstance(op, stencil.LoadOp):
            field_type = op.field.type
            assert isinstance(field_type, stencil.FieldType)
            op.result.type = stencil.TempType(field_type.bounds, field_type.element_type)
        if isinstance(op, stencil.ApplyOp):
            for arg, operand in zip(op.region_args, op.operands):
                arg.type = operand.type


def distribute_stencil(
    module: Operation,
    strategy: DecompositionStrategy,
) -> DistributionSummary:
    """Apply the global-to-local transformation in place."""
    applies = stencil.apply_ops_of(module)
    if not applies:
        raise DecompositionError("module contains no stencil.apply operations")
    halo_lower, halo_upper = stencil.combined_halo(applies)

    global_bounds = _collect_global_bounds(module)
    global_shape = global_bounds.shape
    domain = strategy.local_domain(global_shape, halo_lower, halo_upper)
    local_field_bounds = domain.field_bounds()
    local_store_bounds = domain.compute_bounds()

    # 1. Retype fields to the local buffer bounds.
    _retype_fields(module, local_field_bounds)

    # 2. Shrink stores to the local core.
    for op in module.walk():
        if isinstance(op, stencil.StoreOp):
            op.attributes["bounds"] = local_store_bounds

    # 3. Temps follow from the new field types / store bounds.
    _reset_temp_types(module)
    infer_shapes(module)

    # 4. Insert a dmp.swap before every stencil.load.
    grid = strategy.rank_grid()
    exchanges = strategy.exchanges(domain)
    swaps = 0
    for op in list(module.walk()):
        if not isinstance(op, stencil.LoadOp):
            continue
        builder = Builder.before(op)
        cast = builder.insert(
            UnrealizedConversionCastOp.get(
                op.field, MemRefType(domain.buffer_shape, _element_type_of(op.field))
            )
        )
        builder.insert(SwapOp(cast.output, grid, exchanges))
        swaps += 1

    return DistributionSummary(
        global_shape=tuple(global_shape),
        local_domain=domain,
        swaps_inserted=swaps,
        halo_elements_per_swap=sum(e.element_count() for e in exchanges),
    )


def _element_type_of(field: SSAValue):
    field_type = field.type
    assert isinstance(field_type, stencil.FieldType)
    return field_type.element_type


class DistributeStencilPass(ModulePass):
    """Decompose the stencil domain over a rank grid and insert halo swaps."""

    name = "distribute-stencil"

    def __init__(self, strategy: DecompositionStrategy):
        self.strategy = strategy
        self.summary: Optional[DistributionSummary] = None

    def apply(self, ctx: MLContext, module: Operation) -> None:
        self.summary = distribute_stencil(module, self.strategy)
