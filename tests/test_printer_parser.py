"""Round-trip tests of the shared textual format (printer + parser)."""

import pytest

from repro.dialects import arith, builtin, dmp, func, memref, mpi, scf, stencil
from repro.ir import Builder, FunctionType, ParseError, f64, i32, index, parse_module, print_module
from tests.conftest import build_jacobi_module


def round_trip(module, ctx):
    text = print_module(module)
    reparsed = parse_module(ctx, text)
    assert print_module(reparsed) == text
    return reparsed


class TestRoundTrips:
    def test_empty_module(self, ctx):
        round_trip(builtin.ModuleOp([]), ctx)

    def test_arith_constants_and_ops(self, ctx):
        kernel = func.FuncOp("f", FunctionType([], []))
        b = Builder.at_end(kernel.body.block)
        one = b.insert(arith.ConstantOp.from_int(1, i32)).result
        two = b.insert(arith.ConstantOp.from_float(2.5, f64)).result
        b.insert(arith.AddiOp(one, one))
        b.insert(arith.MulfOp(two, two))
        b.insert(arith.CmpiOp("slt", one, one))
        b.insert(func.ReturnOp([]))
        round_trip(builtin.ModuleOp([kernel]), ctx)

    def test_scf_structures(self, ctx):
        kernel = func.FuncOp("f", FunctionType([index], []))
        b = Builder.at_end(kernel.body.block)
        zero = b.insert(arith.ConstantOp.from_int(0)).result
        one = b.insert(arith.ConstantOp.from_int(1)).result
        loop = scf.ForOp(zero, kernel.args[0], one)
        Builder.at_end(loop.body.block).insert(scf.YieldOp([]))
        b.insert(loop)
        b.insert(func.ReturnOp([]))
        round_trip(builtin.ModuleOp([kernel]), ctx)

    def test_stencil_program_round_trip(self, ctx):
        module = build_jacobi_module()
        reparsed = round_trip(module, ctx)
        applies = [op for op in reparsed.walk() if isinstance(op, stencil.ApplyOp)]
        assert len(applies) == 1
        assert applies[0].halo_extents() == ((1,), (1,))

    def test_dmp_and_mpi_round_trip(self, ctx):
        kernel = func.FuncOp("f", FunctionType([], []))
        b = Builder.at_end(kernel.body.block)
        buffer = b.insert(memref.AllocOp(__import__("repro").ir.MemRefType([8, 8], f64))).memref
        b.insert(
            dmp.SwapOp(
                buffer,
                dmp.GridAttr([2, 2]),
                [dmp.ExchangeAttr([1, 0], [6, 1], [0, 1], [0, -1])],
            )
        )
        b.insert(mpi.CommRankOp())
        requests = b.insert(mpi.AllocateRequestsOp(2)).requests
        b.insert(mpi.GetRequestOp(requests, 0))
        b.insert(func.ReturnOp([]))
        reparsed = round_trip(builtin.ModuleOp([kernel]), ctx)
        swap = next(op for op in reparsed.walk() if isinstance(op, dmp.SwapOp))
        assert swap.grid == dmp.GridAttr([2, 2])
        assert swap.swaps[0].element_count() == 6

    def test_parsed_module_verifies(self, ctx):
        module = build_jacobi_module()
        reparsed = round_trip(module, ctx)
        reparsed.verify()


class TestParserErrors:
    def test_undefined_value(self, ctx):
        with pytest.raises(ParseError):
            parse_module(ctx, '"builtin.module"() ({\n^bb():\n"arith.addi"(%x, %x) : (i32, i32) -> (i32)\n}) : () -> ()')

    def test_malformed_operation(self, ctx):
        with pytest.raises(ParseError):
            parse_module(ctx, "not an operation")

    def test_trailing_input(self, ctx):
        text = print_module(builtin.ModuleOp([])) + ' "extra"() : () -> ()'
        with pytest.raises(ParseError):
            parse_module(ctx, text)

    def test_operand_type_arity_mismatch(self, ctx):
        bad = '"builtin.module"() ({\n^bb():\n"arith.constant"() {"value" = 1 : i32} : (i32) -> (i32)\n}) : () -> ()'
        with pytest.raises(ParseError):
            parse_module(ctx, bad)

    def test_unknown_character(self, ctx):
        with pytest.raises(ParseError):
            parse_module(ctx, "§")
