"""The mpi dialect: an SSA IR mirroring a subset of MPI 1.0 (paper §4.3).

Operations correspond to MPI library calls; types represent MPI objects
(requests, datatypes, statuses).  ``mpi.unwrap_memref`` bridges the memref and
MPI worlds by exposing a buffer pointer, an element count and the matching MPI
datatype.  The dialect is lowered either to plain function calls
(:mod:`repro.transforms.mpi.mpi_to_func`, mirroring the mpich-specific
lowering in the paper) or executed directly on the simulated MPI runtime.
"""

from __future__ import annotations

from typing import Optional

from ..ir.attributes import IntAttr, StringAttr, TypeAttribute
from ..ir.context import Dialect
from ..ir.core import Operation, SSAValue
from ..ir.traits import CommunicationEffect, MemoryReadEffect, MemoryWriteEffect, Pure
from ..ir.types import MemRefType, i32
from .llvm import LLVMPointerType


class RequestType(TypeAttribute):
    """An MPI_Request handle."""

    name = "mpi.request"

    def parameters(self) -> tuple:
        return ()

    def print_parameters(self, printer) -> str:
        return ""

    @classmethod
    def parse_parameters(cls, text: str) -> "RequestType":
        return cls()


class RequestArrayType(TypeAttribute):
    """A contiguous array of MPI_Request handles (for MPI_Waitall)."""

    name = "mpi.requests"

    __slots__ = ("count",)

    def __init__(self, count: int):
        self.count = int(count)

    def parameters(self) -> tuple:
        return (self.count,)

    def print_parameters(self, printer) -> str:
        return str(self.count)

    @classmethod
    def parse_parameters(cls, text: str) -> "RequestArrayType":
        return cls(int(text.strip()))


class StatusType(TypeAttribute):
    """An MPI_Status object."""

    name = "mpi.status"

    def parameters(self) -> tuple:
        return ()

    def print_parameters(self, printer) -> str:
        return ""

    @classmethod
    def parse_parameters(cls, text: str) -> "StatusType":
        return cls()


class DataTypeType(TypeAttribute):
    """An MPI_Datatype handle."""

    name = "mpi.datatype"

    def parameters(self) -> tuple:
        return ()

    def print_parameters(self, printer) -> str:
        return ""

    @classmethod
    def parse_parameters(cls, text: str) -> "DataTypeType":
        return cls()


#: Reduction operation names accepted by mpi.reduce / mpi.allreduce.
REDUCTION_OPERATIONS = ("sum", "prod", "min", "max", "land", "lor")


class InitOp(Operation):
    """MPI_Init."""

    name = "mpi.init"
    traits = frozenset([CommunicationEffect()])

    def __init__(self):
        super().__init__()


class FinalizeOp(Operation):
    """MPI_Finalize."""

    name = "mpi.finalize"
    traits = frozenset([CommunicationEffect()])

    def __init__(self):
        super().__init__()


class CommRankOp(Operation):
    """MPI_Comm_rank on MPI_COMM_WORLD."""

    name = "mpi.comm_rank"

    def __init__(self):
        super().__init__(result_types=[i32])

    @property
    def rank(self) -> SSAValue:
        return self.results[0]


class CommSizeOp(Operation):
    """MPI_Comm_size on MPI_COMM_WORLD."""

    name = "mpi.comm_size"

    def __init__(self):
        super().__init__(result_types=[i32])

    @property
    def size(self) -> SSAValue:
        return self.results[0]


class UnwrapMemrefOp(Operation):
    """Expose a memref as (pointer, element count, MPI datatype)."""

    name = "mpi.unwrap_memref"
    traits = frozenset([Pure()])

    def __init__(self, memref: SSAValue):
        if not isinstance(memref.type, MemRefType):
            raise ValueError("mpi.unwrap_memref expects a memref operand")
        super().__init__(
            operands=[memref],
            result_types=[LLVMPointerType(), i32, DataTypeType()],
        )

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]

    @property
    def ptr(self) -> SSAValue:
        return self.results[0]

    @property
    def count(self) -> SSAValue:
        return self.results[1]

    @property
    def dtype(self) -> SSAValue:
        return self.results[2]


class _PointToPointOp(Operation):
    """Shared layout for send/recv style operations.

    Operand order follows the paper: buffer pointer (or memref), count,
    datatype, peer rank, tag [, request].
    """

    traits = frozenset([CommunicationEffect(), MemoryReadEffect(), MemoryWriteEffect()])

    def __init__(
        self,
        buffer: SSAValue,
        count: SSAValue,
        datatype: SSAValue,
        peer: SSAValue,
        tag: SSAValue,
        request: Optional[SSAValue] = None,
    ):
        operands = [buffer, count, datatype, peer, tag]
        if request is not None:
            operands.append(request)
        super().__init__(operands=operands)

    @property
    def buffer(self) -> SSAValue:
        return self.operands[0]

    @property
    def count(self) -> SSAValue:
        return self.operands[1]

    @property
    def datatype(self) -> SSAValue:
        return self.operands[2]

    @property
    def peer(self) -> SSAValue:
        return self.operands[3]

    @property
    def tag(self) -> SSAValue:
        return self.operands[4]

    @property
    def request(self) -> Optional[SSAValue]:
        return self.operands[5] if len(self.operands) > 5 else None


class SendOp(_PointToPointOp):
    """Blocking MPI_Send."""

    name = "mpi.send"

    def verify_(self) -> None:
        if len(self.operands) != 5:
            raise ValueError("mpi.send takes buffer, count, datatype, dest, tag")


class RecvOp(_PointToPointOp):
    """Blocking MPI_Recv."""

    name = "mpi.recv"

    def verify_(self) -> None:
        if len(self.operands) != 5:
            raise ValueError("mpi.recv takes buffer, count, datatype, source, tag")


class IsendOp(_PointToPointOp):
    """Non-blocking MPI_Isend."""

    name = "mpi.isend"

    def verify_(self) -> None:
        if len(self.operands) != 6:
            raise ValueError(
                "mpi.isend takes buffer, count, datatype, dest, tag, request"
            )


class IrecvOp(_PointToPointOp):
    """Non-blocking MPI_Irecv."""

    name = "mpi.irecv"

    def verify_(self) -> None:
        if len(self.operands) != 6:
            raise ValueError(
                "mpi.irecv takes buffer, count, datatype, source, tag, request"
            )


class TestOp(Operation):
    """MPI_Test: non-blocking completion check of one request."""

    name = "mpi.test"
    traits = frozenset([CommunicationEffect()])

    def __init__(self, request: SSAValue):
        from ..ir.types import i1

        super().__init__(operands=[request], result_types=[i1])

    @property
    def flag(self) -> SSAValue:
        return self.results[0]


class WaitOp(Operation):
    """MPI_Wait: block until one request completes."""

    name = "mpi.wait"
    traits = frozenset([CommunicationEffect()])

    def __init__(self, request: SSAValue):
        super().__init__(operands=[request])


class WaitallOp(Operation):
    """MPI_Waitall: block until every request in an array completes."""

    name = "mpi.waitall"
    traits = frozenset([CommunicationEffect()])

    def __init__(self, requests: SSAValue, count: SSAValue):
        super().__init__(operands=[requests, count])

    @property
    def requests(self) -> SSAValue:
        return self.operands[0]

    @property
    def count(self) -> SSAValue:
        return self.operands[1]


class _ReductionOp(Operation):
    traits = frozenset([CommunicationEffect(), MemoryReadEffect(), MemoryWriteEffect()])

    def __init__(
        self,
        send_buffer: SSAValue,
        recv_buffer: SSAValue,
        count: SSAValue,
        datatype: SSAValue,
        operation: str,
        root: Optional[SSAValue] = None,
    ):
        if operation not in REDUCTION_OPERATIONS:
            raise ValueError(f"unknown MPI reduction operation {operation!r}")
        operands = [send_buffer, recv_buffer, count, datatype]
        if root is not None:
            operands.append(root)
        super().__init__(
            operands=operands,
            attributes={"operation": StringAttr(operation)},
        )

    @property
    def operation(self) -> str:
        attr = self.attributes["operation"]
        assert isinstance(attr, StringAttr)
        return attr.data

    @property
    def send_buffer(self) -> SSAValue:
        return self.operands[0]

    @property
    def recv_buffer(self) -> SSAValue:
        return self.operands[1]

    @property
    def count(self) -> SSAValue:
        return self.operands[2]

    @property
    def datatype(self) -> SSAValue:
        return self.operands[3]

    @property
    def root(self) -> Optional[SSAValue]:
        return self.operands[4] if len(self.operands) > 4 else None


class ReduceOp(_ReductionOp):
    """MPI_Reduce to a root rank."""

    name = "mpi.reduce"

    def verify_(self) -> None:
        if len(self.operands) != 5:
            raise ValueError(
                "mpi.reduce takes send buffer, recv buffer, count, datatype, root"
            )


class AllreduceOp(_ReductionOp):
    """MPI_Allreduce across all ranks."""

    name = "mpi.allreduce"

    def verify_(self) -> None:
        if len(self.operands) != 4:
            raise ValueError(
                "mpi.allreduce takes send buffer, recv buffer, count, datatype"
            )


class BcastOp(Operation):
    """MPI_Bcast from a root rank."""

    name = "mpi.bcast"
    traits = frozenset([CommunicationEffect(), MemoryReadEffect(), MemoryWriteEffect()])

    def __init__(self, buffer: SSAValue, count: SSAValue, datatype: SSAValue, root: SSAValue):
        super().__init__(operands=[buffer, count, datatype, root])

    @property
    def buffer(self) -> SSAValue:
        return self.operands[0]

    @property
    def root(self) -> SSAValue:
        return self.operands[3]


class GatherOp(Operation):
    """MPI_Gather to a root rank."""

    name = "mpi.gather"
    traits = frozenset([CommunicationEffect(), MemoryReadEffect(), MemoryWriteEffect()])

    def __init__(
        self,
        send_buffer: SSAValue,
        recv_buffer: SSAValue,
        count: SSAValue,
        datatype: SSAValue,
        root: SSAValue,
    ):
        super().__init__(operands=[send_buffer, recv_buffer, count, datatype, root])

    @property
    def send_buffer(self) -> SSAValue:
        return self.operands[0]

    @property
    def recv_buffer(self) -> SSAValue:
        return self.operands[1]

    @property
    def root(self) -> SSAValue:
        return self.operands[4]


class BarrierOp(Operation):
    """MPI_Barrier on MPI_COMM_WORLD."""

    name = "mpi.barrier"
    traits = frozenset([CommunicationEffect()])

    def __init__(self):
        super().__init__()


class AllocateRequestsOp(Operation):
    """Allocate an array of MPI_Request handles (friction-reducing helper op)."""

    name = "mpi.allocate_requests"

    def __init__(self, count: int):
        super().__init__(
            attributes={"count": IntAttr(count)},
            result_types=[RequestArrayType(count)],
        )

    @property
    def count(self) -> int:
        attr = self.attributes["count"]
        assert isinstance(attr, IntAttr)
        return attr.data

    @property
    def requests(self) -> SSAValue:
        return self.results[0]


class GetRequestOp(Operation):
    """Index into a request array, yielding a single request handle."""

    name = "mpi.get_request"
    traits = frozenset([Pure()])

    def __init__(self, requests: SSAValue, index_value: int):
        super().__init__(
            operands=[requests],
            attributes={"index": IntAttr(index_value)},
            result_types=[RequestType()],
        )

    @property
    def requests(self) -> SSAValue:
        return self.operands[0]

    @property
    def index(self) -> int:
        attr = self.attributes["index"]
        assert isinstance(attr, IntAttr)
        return attr.data


class NullRequestOp(Operation):
    """Set a request handle to MPI_REQUEST_NULL (skipped exchange)."""

    name = "mpi.set_null_request"

    def __init__(self, request: SSAValue):
        super().__init__(operands=[request])


MPI = Dialect(
    "mpi",
    [
        InitOp, FinalizeOp, CommRankOp, CommSizeOp, UnwrapMemrefOp,
        SendOp, RecvOp, IsendOp, IrecvOp, TestOp, WaitOp, WaitallOp,
        ReduceOp, AllreduceOp, BcastOp, GatherOp, BarrierOp,
        AllocateRequestsOp, GetRequestOp, NullRequestOp,
    ],
    [RequestType, RequestArrayType, StatusType, DataTypeType],
)
