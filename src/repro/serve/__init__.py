"""repro.serve — the multi-tenant serving layer over one warm Session.

Public surface::

    from repro.serve import Server

    with Server(ExecutionConfig(runtime="threads")) as server:
        handle = server.submit(program, fields, scalars, tenant="alice")
        result = handle.result(timeout=30.0)
        print(server.tenant("alice").exec_statistics())

See :class:`Server` for the plan cache / admission control / batched
dispatch design, :class:`JobHandle` for the future semantics, and
:class:`TenantStats` for per-tenant accounting.
"""

from .errors import (
    JobCancelledError,
    QueueFullError,
    ServeError,
    ServerClosedError,
)
from .job import CANCELLED, DONE, FAILED, PENDING, RUNNING, JobHandle
from .server import Server
from .stats import TenantStats

__all__ = [
    "Server",
    "JobHandle",
    "TenantStats",
    "ServeError",
    "QueueFullError",
    "ServerClosedError",
    "JobCancelledError",
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
]
