"""Regeneration of every table and figure of the paper's evaluation (§6).

Each ``figure_*``/``table_*`` function compiles the corresponding benchmark
through the shared stack, reads the kernel characteristics off the compiled
IR, and evaluates the platform performance models for both the shared-stack
("xDSL") configuration and the baseline configurations the paper compares
against.  The return value is a list of row dictionaries; ``format_rows``
renders them as the text table stored in EXPERIMENTS.md.

Absolute GPts/s values come from analytic models (see ``repro.machine``) and
are not expected to match the paper's measurements; the comparisons the paper
makes (who is faster, by roughly how much, and where behaviour changes) are
the quantities of interest.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Sequence

import numpy as np

from ..machine import (
    ALVEO_U280,
    ARCHER2_NODE,
    CRAY_PSYCLONE,
    DEVITO_NATIVE,
    GNU_PSYCLONE,
    OPENACC_DEVITO,
    PSYCLONE_NVIDIA_GPU,
    SLINGSHOT,
    V100,
    XDSL_CPU,
    XDSL_GPU,
    XDSL_PSYCLONE,
    XDSL_PSYCLONE_GPU,
    ProgramCharacteristics,
    characterize_module,
    estimate_cpu_node,
    estimate_fpga,
    estimate_gpu,
    estimate_strong_scaling,
)
from ..transforms.stencil import fuse_applies, infer_shapes
from ..workloads import (
    PAPER_PW_SCALING_SHAPE,
    PAPER_PW_SIZES_CPU,
    PAPER_PW_SIZES_GPU,
    PAPER_TRAADV_SCALING_SHAPE,
    PAPER_TRAADV_SIZES_CPU,
    PAPER_TRAADV_SIZES_GPU,
    acoustic_wave,
    heat_diffusion,
    kernel_label,
    pw_advection,
    tracer_advection,
)

#: Small shapes used to *build* the IR; characteristics are then rescaled to
#: the paper's problem sizes so no paper-sized array is ever allocated.
_BUILD_SHAPE = {2: (32, 32), 3: (16, 16, 16)}
_PAPER_SHAPE_CPU = {2: (16384, 16384), 3: (1024, 1024, 1024)}
_PAPER_SHAPE_GPU = {2: (8192, 8192), 3: (512, 512, 512)}
_PAPER_TIMESTEPS = {2: 1024, 3: 512}


def _scale_characteristics(
    characteristics: ProgramCharacteristics, factor: float
) -> ProgramCharacteristics:
    scaled = ProgramCharacteristics(applies=[])
    for apply_chars in characteristics.applies:
        scaled.applies.append(
            replace(apply_chars, cells_per_step=max(1, int(apply_chars.cells_per_step * factor)))
        )
    return scaled


def _devito_characteristics(kind: str, ndim: int, space_order: int, paper_shape) -> ProgramCharacteristics:
    build_shape = _BUILD_SHAPE[ndim]
    workload = (heat_diffusion if kind == "heat" else acoustic_wave)(build_shape, space_order)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    infer_shapes(module)
    fuse_applies(module)
    characteristics = characterize_module(module)
    build_cells = float(np.prod(build_shape))
    paper_cells = float(np.prod(paper_shape))
    return _scale_characteristics(characteristics, paper_cells / build_cells)


def _psyclone_characteristics(workload_kind: str, shape) -> ProgramCharacteristics:
    build_shape = (16, 16, 8)
    workload = (pw_advection if workload_kind == "pw" else tracer_advection)(build_shape, iterations=1)
    module = workload.build_module()
    infer_shapes(module)
    fuse_applies(module)
    characteristics = characterize_module(module)
    factor = float(np.prod(shape)) / float(np.prod(build_shape))
    return _scale_characteristics(characteristics, factor)


# ---------------------------------------------------------------------------
# Figure 7: Devito vs xDSL-Devito, single ARCHER2 node
# ---------------------------------------------------------------------------

def figure7_devito_cpu(kinds: Sequence[str] = ("heat", "wave")) -> list[dict]:
    """Heat/wave kernels, 2D and 3D, SDO 2/4/8, Devito vs xDSL on one node."""
    rows: list[dict] = []
    for kind in kinds:
        for ndim in (2, 3):
            for space_order in (2, 4, 8):
                paper_shape = _PAPER_SHAPE_CPU[ndim]
                timesteps = _PAPER_TIMESTEPS[ndim]
                characteristics = _devito_characteristics(kind, ndim, space_order, paper_shape)
                devito = estimate_cpu_node(characteristics, timesteps, ARCHER2_NODE, DEVITO_NATIVE)
                xdsl = estimate_cpu_node(characteristics, timesteps, ARCHER2_NODE, XDSL_CPU)
                rows.append(
                    {
                        "figure": "7a" if kind == "heat" else "7b",
                        "kernel": kernel_label(kind, ndim, space_order),
                        "ndim": ndim,
                        "space_order": space_order,
                        "arithmetic_intensity": characteristics.arithmetic_intensity(),
                        "devito_gpts": devito.gpoints_per_second,
                        "xdsl_gpts": xdsl.gpoints_per_second,
                        "speedup_xdsl_over_devito": xdsl.gpoints_per_second / devito.gpoints_per_second,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Figure 8: strong scaling of heat/wave 3D so4 on up to 128 nodes
# ---------------------------------------------------------------------------

def figure8_strong_scaling(
    node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
) -> list[dict]:
    """Strong scaling, 3D so4 heat and wave kernels, 8 ranks x 16 threads per node."""
    rows: list[dict] = []
    for kind in ("heat", "wave"):
        paper_shape = _PAPER_SHAPE_CPU[3]
        timesteps = _PAPER_TIMESTEPS[3]
        characteristics = _devito_characteristics(kind, 3, 4, paper_shape)
        for profile, label in ((DEVITO_NATIVE, "devito"), (XDSL_CPU, "xdsl")):
            points = estimate_strong_scaling(
                characteristics, paper_shape, timesteps, node_counts,
                ARCHER2_NODE, SLINGSHOT, profile, ranks_per_node=8, decomposed_dims=3,
            )
            for point in points:
                rows.append(
                    {
                        "figure": "8a" if kind == "heat" else "8b",
                        "kernel": kernel_label(kind, 3, 4),
                        "stack": label,
                        "nodes": point.nodes,
                        "gpts": point.gpoints_per_second,
                        "parallel_efficiency": point.parallel_efficiency,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Figure 9: GPU evaluation (V100) of Devito kernels
# ---------------------------------------------------------------------------

def figure9_devito_gpu(kinds: Sequence[str] = ("heat", "wave")) -> list[dict]:
    """Heat/wave kernels on a V100: OpenACC-Devito vs xDSL CUDA lowering."""
    rows: list[dict] = []
    for kind in kinds:
        for ndim in (2, 3):
            for space_order in (2, 4, 8):
                paper_shape = _PAPER_SHAPE_GPU[ndim]
                timesteps = _PAPER_TIMESTEPS[ndim]
                characteristics = _devito_characteristics(kind, ndim, space_order, paper_shape)
                openacc = estimate_gpu(characteristics, timesteps, V100, OPENACC_DEVITO)
                xdsl = estimate_gpu(characteristics, timesteps, V100, XDSL_GPU)
                rows.append(
                    {
                        "figure": "9a" if kind == "heat" else "9b",
                        "kernel": kernel_label(kind, ndim, space_order),
                        "ndim": ndim,
                        "space_order": space_order,
                        "openacc_gpts": openacc.gpoints_per_second,
                        "xdsl_gpts": xdsl.gpoints_per_second,
                        "speedup_xdsl_over_openacc": xdsl.gpoints_per_second / openacc.gpoints_per_second,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Figure 10a/10b: PSyclone benchmarks, single CPU node and V100
# ---------------------------------------------------------------------------

def figure10a_psyclone_cpu() -> list[dict]:
    """PW advection and tracer advection: Cray vs xDSL vs GNU on one node."""
    rows: list[dict] = []
    for workload_kind, sizes, iterations in (
        ("pw", PAPER_PW_SIZES_CPU, 1),
        ("traadv", PAPER_TRAADV_SIZES_CPU, 100),
    ):
        for label, shape in sizes.items():
            characteristics = _psyclone_characteristics(workload_kind, shape)
            row = {"figure": "10a", "benchmark": label, "iterations": iterations}
            for profile, column in (
                (CRAY_PSYCLONE, "cray_gpts"),
                (XDSL_PSYCLONE, "xdsl_gpts"),
                (GNU_PSYCLONE, "gnu_gpts"),
            ):
                estimate = estimate_cpu_node(characteristics, iterations, ARCHER2_NODE, profile)
                row[column] = estimate.gpoints_per_second
            row["stencil_regions"] = characteristics.stencil_regions
            rows.append(row)
    return rows


def figure10b_psyclone_gpu() -> list[dict]:
    """PW advection and tracer advection on a V100: PSyclone (nvc) vs xDSL."""
    rows: list[dict] = []
    for workload_kind, sizes, iterations in (
        ("pw", PAPER_PW_SIZES_GPU, 1),
        ("traadv", PAPER_TRAADV_SIZES_GPU, 100),
    ):
        for label, shape in sizes.items():
            characteristics = _psyclone_characteristics(workload_kind, shape)
            field_bytes = 6 * float(np.prod(shape)) * 4
            psyclone = estimate_gpu(
                characteristics, iterations, V100, PSYCLONE_NVIDIA_GPU, field_bytes=field_bytes
            )
            xdsl = estimate_gpu(
                characteristics, iterations, V100, XDSL_PSYCLONE_GPU, field_bytes=field_bytes
            )
            rows.append(
                {
                    "figure": "10b",
                    "benchmark": label,
                    "psyclone_gpts": psyclone.gpoints_per_second,
                    "xdsl_gpts": xdsl.gpoints_per_second,
                    "speedup_xdsl_over_psyclone": xdsl.gpoints_per_second
                    / psyclone.gpoints_per_second,
                    "stencil_regions": characteristics.stencil_regions,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table 1: FPGA (Alveo U280), initial vs dataflow-optimised
# ---------------------------------------------------------------------------

def table1_fpga() -> list[dict]:
    """PW advection and tracer advection on the Alveo U280."""
    cases = {
        "pw-8m": ("pw", (256, 256, 128), 1),
        "pw-33m": ("pw", (512, 512, 128), 1),
        "pw-134m": ("pw", (1024, 1024, 128), 1),
        "traadv-4m": ("traadv", (256, 128, 128), 1),
        "traadv-32m": ("traadv", (512, 512, 128), 1),
    }
    rows: list[dict] = []
    for label, (workload_kind, shape, iterations) in cases.items():
        characteristics = _psyclone_characteristics(workload_kind, shape)
        initial = estimate_fpga(characteristics, iterations, ALVEO_U280, optimized=False)
        optimized = estimate_fpga(characteristics, iterations, ALVEO_U280, optimized=True)
        rows.append(
            {
                "table": "1",
                "benchmark": label,
                "initial_gpts": initial.gpoints_per_second,
                "optimized_gpts": optimized.gpoints_per_second,
                "improvement": optimized.gpoints_per_second / initial.gpoints_per_second,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 11: xDSL-PSyclone strong scaling (2D decomposition)
# ---------------------------------------------------------------------------

def figure11_psyclone_scaling(
    node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
) -> list[dict]:
    """Strong scaling of PW advection and tracer advection with a 2D decomposition."""
    rows: list[dict] = []
    for workload_kind, shape, iterations in (
        ("pw", PAPER_PW_SCALING_SHAPE, 1),
        ("traadv", PAPER_TRAADV_SCALING_SHAPE, 100),
    ):
        characteristics = _psyclone_characteristics(workload_kind, shape)
        points = estimate_strong_scaling(
            characteristics, shape, iterations, node_counts,
            ARCHER2_NODE, SLINGSHOT, XDSL_PSYCLONE,
            ranks_per_node=8, decomposed_dims=2,
        )
        for point in points:
            rows.append(
                {
                    "figure": "11a" if workload_kind == "pw" else "11b",
                    "benchmark": workload_kind,
                    "nodes": point.nodes,
                    "gpts": point.gpoints_per_second,
                    "parallel_efficiency": point.parallel_efficiency,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Reporting helpers
# ---------------------------------------------------------------------------

def format_rows(rows: Iterable[dict], float_format: str = "{:.3g}") -> str:
    """Render a list of row dicts as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(row[c]) if isinstance(row.get(c), float) else str(row.get(c, ""))
                for c in columns
            ]
        )
    widths = [
        max(len(columns[i]), max(len(line[i]) for line in rendered)) for i in range(len(columns))
    ]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered)
    return f"{header}\n{separator}\n{body}"


ALL_EXPERIMENTS = {
    "figure7": figure7_devito_cpu,
    "figure8": figure8_strong_scaling,
    "figure9": figure9_devito_gpu,
    "figure10a": figure10a_psyclone_cpu,
    "figure10b": figure10b_psyclone_gpu,
    "table1": table1_fpga,
    "figure11": figure11_psyclone_scaling,
}


def run_all() -> dict[str, list[dict]]:
    """Run every experiment and return {experiment name: rows}."""
    return {name: fn() for name, fn in ALL_EXPERIMENTS.items()}
