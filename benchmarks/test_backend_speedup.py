"""Vectorized backend vs tree-walking interpreter on the paper's CPU kernels.

The whole point of the shared stack is that the *same* lowered program runs
fast; this benchmark pins the execution-backend speedup contract on every
nest shape the vectorizer covers:

* the fig. 7a heat kernels (2D, space orders 2/4/8), untiled *and*
  cache-tiled (the ``min``-clamped ``convert-stencil-to-scf{tile}`` output);
* an ``scf.reduce`` sum-of-squares nest (NumPy reduction with the tree
  walker's deterministic fold);
* the ``merge()``-masked PsyClone tracer kernel (``cmpf``/``select`` chains
  compiled to ``np.where`` trees).

Each must be at least 10x faster than the per-cell tree walker while
producing bit-identical outputs.  ``benchmarks/bench_regression.py`` replays
this file in CI and fails the build when any speedup drops below the floors
committed in ``benchmarks/baseline.json``.
"""

import time

import numpy as np
import pytest

from bench_helpers import attach_rows
from repro.core import Session, compile_stencil_program, cpu_target, default_session, dmp_target
from repro.dialects import arith
from repro.workloads import heat_diffusion, masked_tracer_advection

GRID = (64, 64)
TIMESTEPS = 3
MIN_SPEEDUP = 10.0


def _compiled_heat(space_order):
    workload = heat_diffusion(GRID, space_order=space_order, dtype=np.float64)
    workload.initialise(seed=space_order)
    operator = workload.operator(backend="xdsl")
    program = operator.compile(workload.dt)
    return program, operator._field_arguments()


def _run_local(program, call_args, function, backend):
    """One-shot execution through the Session API (no deprecated shims)."""
    return default_session().run(
        program, list(call_args), function=function, backend=backend
    )


def _time_backend(program, fields, backend, repeats=1):
    best = float("inf")
    outputs = None
    for _ in range(repeats):
        arrays = [field.copy() for field in fields]
        start = time.perf_counter()
        _run_local(program, [*arrays, TIMESTEPS], "kernel", backend)
        best = min(best, time.perf_counter() - start)
        outputs = arrays
    return best, outputs


@pytest.mark.benchmark(group="backend-speedup")
@pytest.mark.parametrize("space_order", [2, 4, 8])
def test_vectorized_backend_speedup(benchmark, space_order):
    program, fields = _compiled_heat(space_order)
    # Warm the nest-compilation cache so both timings measure pure execution.
    program.compiled_kernel("kernel")

    interp_time, interp_fields = _time_backend(program, fields, "interpreter")
    vector_time, vector_fields = benchmark(
        lambda: _time_backend(program, fields, "vectorized", repeats=3)
    )

    for a, b in zip(interp_fields, vector_fields):
        assert np.array_equal(a, b), "backends diverged"

    speedup = interp_time / vector_time
    attach_rows(
        benchmark,
        "backend-speedup",
        [
            {
                "kernel": f"heat2d-so{space_order}",
                "shape": list(GRID),
                "backend": "vectorized",
                "timesteps": TIMESTEPS,
                "interpreter_s": interp_time,
                "vectorized_s": vector_time,
                "speedup": speedup,
            }
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized backend is only {speedup:.1f}x faster than the "
        f"interpreter on heat2d-so{space_order} (need >= {MIN_SPEEDUP}x)"
    )


def _assert_and_attach(benchmark, name, kernel, shape, program, make_args,
                       function, steps=None):
    """Time both backends on one program, assert >= 10x, attach the row.

    ``steps`` (when given) is appended to the arguments produced by
    ``make_args``; kernels without a timestep argument pass None.
    """
    program.compiled_kernel(function)  # warm the nest-compilation cache

    def run(backend, repeats=1):
        best = float("inf")
        outputs = None
        for _ in range(repeats):
            arrays = make_args()
            call_args = arrays if steps is None else [*arrays, steps]
            start = time.perf_counter()
            _run_local(program, call_args, function, backend)
            best = min(best, time.perf_counter() - start)
            outputs = arrays
        return best, outputs

    interp_time, interp_fields = run("interpreter")
    vector_time, vector_fields = benchmark(lambda: run("vectorized", repeats=3))
    for a, b in zip(interp_fields, vector_fields):
        assert np.array_equal(a, b), "backends diverged"
    speedup = interp_time / vector_time
    attach_rows(
        benchmark,
        name,
        [
            {
                "kernel": kernel,
                "shape": list(shape),
                "backend": "vectorized",
                "timesteps": 1 if steps is None else steps,
                "interpreter_s": interp_time,
                "vectorized_s": vector_time,
                "speedup": speedup,
            }
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized backend is only {speedup:.1f}x faster than the "
        f"interpreter on {kernel} (need >= {MIN_SPEEDUP}x)"
    )


@pytest.mark.benchmark(group="backend-speedup")
def test_tiled_heat_kernel_speedup(benchmark):
    """The min-clamped tiled stencil_to_scf output must vectorize, not tree-walk."""
    workload = heat_diffusion(GRID, space_order=4, dtype=np.float64)
    workload.initialise(seed=4)
    operator = workload.operator(backend="xdsl")
    module = operator.stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, cpu_target(tile_sizes=(16, 16)))
    kernel = program.compiled_kernel("kernel")
    assert kernel.nest_count >= 1, kernel.fallback_reasons
    fields = operator._field_arguments()
    _assert_and_attach(
        benchmark, "backend-speedup", "heat2d-so4-tiled16", GRID, program,
        lambda: [field.copy() for field in fields], "kernel", TIMESTEPS,
    )


@pytest.mark.benchmark(group="backend-speedup")
def test_reduce_nest_speedup(benchmark):
    """scf.reduce nests must compile to NumPy reductions, not per-cell folds."""
    from repro.core.pipeline import CompiledProgram
    from repro.machine.kernel_model import characterize_module
    from tests.conftest import build_reduce_module

    n = 96
    module = build_reduce_module(n, arith.AddfOp, 0.0)
    program = CompiledProgram(
        module=module,
        target=cpu_target(),
        characteristics=characterize_module(module),
        stencil_regions=0,
    )
    rng = np.random.default_rng(11)
    data = rng.standard_normal((n, n))
    _assert_and_attach(
        benchmark, "backend-speedup", f"reduce-sum-{n}x{n}", (n, n), program,
        lambda: [data.copy(), np.zeros(1)], "kernel",
    )


@pytest.mark.benchmark(group="session-plan")
def test_session_plan_hotpath_speedup(benchmark):
    """plan.run() must beat the one-shot shim path on back-to-back runs.

    The serving scenario of the Session API: the same small-grid distributed
    program executed many times.  A held :class:`repro.core.Plan` has
    pre-resolved the kernel selection, function lookup, decomposition
    geometry, scatter/gather slice plans, interpreter block plans and the
    persistent rank threads, so each ``plan.run()`` does strictly less work
    than a ``run_distributed``-equivalent one-shot call.  Results must stay
    bit-identical with matching statistics (asserted here; the full
    {threads, processes} x {1, 2 threads_per_rank} parity matrix lives in
    tests/test_session_api.py).
    """
    steps, repeats, calls = 2, 3, 20
    workload = heat_diffusion((16, 16), space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, dmp_target((2, 1)))

    def fields():
        u0 = np.zeros((18, 18))
        u0[8:10, 8:10] = 1.0
        return [u0, u0.copy()]

    def one_shot(arrays):
        # The shim-equivalent path: a fresh plan per call, legacy
        # thread-per-run discipline (exactly what run_distributed does,
        # minus its DeprecationWarning).
        return default_session().run(program, arrays, [steps])

    with Session() as session:
        plan = session.plan(program)
        shim_fields = fields()
        shim_result = one_shot(shim_fields)
        plan_fields = fields()
        plan_result = plan.run(plan_fields, [steps])
        for mine, theirs in zip(plan_fields, shim_fields):
            assert np.array_equal(mine, theirs), "plan diverged from the shim"
        assert plan_result.statistics == shim_result.statistics
        assert plan_result.comm_statistics == shim_result.comm_statistics

        shim_best = plan_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(calls):
                one_shot(fields())
            shim_best = min(shim_best, (time.perf_counter() - start) / calls)
            start = time.perf_counter()
            for _ in range(calls):
                plan.run(fields(), [steps])
            plan_best = min(plan_best, (time.perf_counter() - start) / calls)

        def measured():
            return shim_best, plan_best

        benchmark(measured)
    speedup = shim_best / plan_best
    attach_rows(
        benchmark,
        "session-plan",
        [
            {
                "kernel": "session-plan-hotpath",
                "shape": [16, 16],
                "backend": "auto",
                "ranks": [2, 1],
                "threads_per_rank": 1,
                "timesteps": steps,
                "shim_s": shim_best,
                "plan_s": plan_best,
                "speedup": speedup,
            }
        ],
    )
    assert speedup >= 1.3, (
        f"plan.run() hot path is only {speedup:.2f}x faster than the "
        "one-shot shim path on back-to-back runs (need >= 1.3x)"
    )


@pytest.mark.benchmark(group="backend-speedup")
def test_masked_tracer_kernel_speedup(benchmark):
    """merge()-masked PsyClone tracer kernels must vectorize end-to-end."""
    shape = (16, 16, 8)
    workload = masked_tracer_advection(shape, iterations=2, computations=6)
    module = workload.build_module(dtype=np.float64)
    program = compile_stencil_program(module, cpu_target())
    function = workload.schedule.name
    kernel = program.compiled_kernel(function)
    assert kernel.nest_count == 6, kernel.fallback_reasons
    arrays = workload.arrays(halo=1, dtype=np.float64, seed=29)
    names = workload.schedule.array_names()
    _assert_and_attach(
        benchmark, "backend-speedup", "traadv-masked", shape, program,
        lambda: [arrays[name].copy() for name in names], function,
        workload.iterations,
    )


@pytest.mark.benchmark(group="megakernel")
def test_megakernel_dispatch_speedup(benchmark):
    """The plan-compiled megakernel must beat plan.run() dispatch >= 2x.

    The dispatch-bound regime: a small grid (16x16) advanced for many
    timesteps, so per-step interpreter dispatch (block-plan replay, nest
    lookup, region resolution) dominates the arithmetic.  ``Plan.compile()``
    traces the time loop once and emits one straight-line fused Python
    function, so each ``plan.run()`` is a single call into compiled
    bytecode.  Results must stay bit-identical with matching statistics
    (asserted here; the full {threads, processes} x {1, 2 threads_per_rank}
    parity matrix lives in tests/test_megakernel.py).

    The generated kernel source is written to ``BENCH_megakernel_source.py``
    so the CI bench job can upload it as an inspectable artifact.
    """
    import pathlib

    steps, repeats, calls = 200, 3, 3
    shape = (16, 16)
    workload = heat_diffusion(shape, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, cpu_target())

    def fields():
        u0 = np.zeros((18, 18))
        u0[8:10, 8:10] = 1.0
        return [u0, u0.copy()]

    with Session(codegen="planned") as planned_session, \
            Session(codegen="megakernel") as mega_session:
        planned = planned_session.plan(program)
        mega = mega_session.plan(program)

        planned_fields = fields()
        planned_result = planned.run(planned_fields, [steps])
        mega_fields = fields()
        mega_result = mega.run(mega_fields, [steps])
        for mine, theirs in zip(mega_fields, planned_fields):
            assert np.array_equal(mine, theirs), (
                "megakernel diverged from the planned path"
            )
        assert mega_result.statistics == planned_result.statistics

        sources = [
            kernel.source
            for kernel in mega_session._megakernel_cache.values()
            if hasattr(kernel, "source")
        ]
        assert sources, "no megakernel was emitted"
        pathlib.Path("BENCH_megakernel_source.py").write_text(
            "\n\n".join(sources), encoding="utf-8"
        )

        planned_best = mega_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(calls):
                planned.run(fields(), [steps])
            planned_best = min(planned_best, (time.perf_counter() - start) / calls)
            start = time.perf_counter()
            for _ in range(calls):
                mega.run(fields(), [steps])
            mega_best = min(mega_best, (time.perf_counter() - start) / calls)

        def measured():
            return planned_best, mega_best

        benchmark(measured)
    speedup = planned_best / mega_best
    attach_rows(
        benchmark,
        "megakernel",
        [
            {
                "kernel": "megakernel-dispatch",
                "shape": list(shape),
                "backend": "auto",
                "ranks": 1,
                "threads_per_rank": 1,
                "timesteps": steps,
                "planned_s": planned_best,
                "megakernel_s": mega_best,
                "speedup": speedup,
            }
        ],
    )
    assert speedup >= 2.0, (
        f"megakernel is only {speedup:.2f}x faster than plan.run() dispatch "
        "in the small-grid/many-timestep regime (need >= 2.0x)"
    )


@pytest.mark.benchmark(group="megakernel")
def test_trace_overhead(benchmark):
    """Trace-off plan.run() must stay within 3% of the raw megakernel call.

    Every observability hook of repro.obs is gated on ``tracer is None``,
    and the megakernel emitter produces no span bookkeeping at all when the
    run is untraced — so the full trace-off dispatch path (plan.run with
    its hook sites, metrics ingestion and trace-attachment early-outs) must
    stay within 3% of calling the generated megakernel function directly on
    a 16x16/2000-step heat run.  The run is long enough that the megakernel
    body dominates and the plan's fixed per-run dispatch cost (scatter and
    gather copies, which predate tracing) stays below the 3% budget, so the
    floor pins the "near-zero overhead when off" contract of the tracing
    layer rather than timer noise on a microsecond-scale call.
    """
    from repro.interp.interpreter import ExecStatistics

    steps, pairs = 2000, 12
    shape = (16, 16)
    workload = heat_diffusion(shape, space_order=2, dtype=np.float64)
    module = workload.operator(backend="xdsl").stencil_module(dt=workload.dt)
    program = compile_stencil_program(module, cpu_target())

    def fields():
        u0 = np.zeros((18, 18))
        u0[8:10, 8:10] = 1.0
        return [u0, u0.copy()]

    with Session(codegen="megakernel", trace="off") as session:
        plan = session.plan(program)
        raw_fields = fields()
        megakernel = plan._megakernel_for([*raw_fields, steps], rank=0, size=1)
        assert megakernel is not None
        # Untraced emission carries zero observability bookkeeping.
        assert "_tracer" not in megakernel.source

        assert megakernel.run([*raw_fields, steps], ExecStatistics(), None)
        plan_fields = fields()
        plan.run(plan_fields, [steps])
        for mine, theirs in zip(plan_fields, raw_fields):
            assert np.array_equal(mine, theirs), (
                "plan.run diverged from the raw megakernel call"
            )

        # Call-by-call interleaving with best-of-single-call minima: both
        # paths sample the same machine conditions, so CPU-frequency drift
        # or a noisy neighbour shifts both minima together instead of
        # skewing the ratio.
        raw_best = off_best = float("inf")
        for _ in range(pairs):
            start = time.perf_counter()
            megakernel.run([*fields(), steps], ExecStatistics(), None)
            raw_best = min(raw_best, time.perf_counter() - start)
            start = time.perf_counter()
            plan.run(fields(), [steps])
            off_best = min(off_best, time.perf_counter() - start)

        def measured():
            return raw_best, off_best

        benchmark(measured)
    speedup = raw_best / off_best
    attach_rows(
        benchmark,
        "megakernel",
        [
            {
                "kernel": "trace-overhead",
                "shape": list(shape),
                "backend": "auto",
                "ranks": 1,
                "threads_per_rank": 1,
                "timesteps": steps,
                "raw_megakernel_s": raw_best,
                "trace_off_s": off_best,
                "speedup": speedup,
            }
        ],
    )
    assert speedup >= 0.97, (
        f"trace-off plan.run() dispatch is {1 / speedup:.3f}x the raw "
        "megakernel call on the dispatch-bound run (must stay within 3%)"
    )
