"""Human-readable profile of a repro Chrome trace-event JSON file.

Usage::

    python -m repro.obs.report trace.json [--top N]

Works from the dumped JSON alone (no live session required), so it runs on
CI artifacts: it groups the ``X`` events per track, computes inclusive and
exclusive time per span name, and prints the top spans plus counter totals.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List


def _track_names(events: List[dict]) -> Dict[int, str]:
    names: Dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event["pid"]] = event.get("args", {}).get("name", str(event["pid"]))
    return names


def summarize(trace: dict) -> dict:
    """Aggregate a Chrome trace dict into per-span rows and counters."""
    events = trace.get("traceEvents", [])
    spans = [event for event in events if event.get("ph") == "X"]
    tracks = _track_names(events)

    # Exclusive time per (pid, name): sweep each track's spans in start
    # order with an interval stack, subtracting immediate children.
    rows: Dict[str, dict] = {}
    by_pid: Dict[int, List[dict]] = {}
    for span in spans:
        by_pid.setdefault(span.get("pid", 0), []).append(span)
    for pid_spans in by_pid.values():
        stack: List[list] = []  # [name, end_ts, child_us, start_ts]
        for span in sorted(pid_spans, key=lambda s: (s["ts"], -s.get("dur", 0))):
            ts, dur = span["ts"], span.get("dur", 0)
            while stack and stack[-1][1] <= ts + 1e-6:
                done = stack.pop()
                row = rows[done[0]]
                row["exclusive_us"] += max(0.0, (done[1] - done[3]) - done[2])
            if stack:
                stack[-1][2] += dur
            name = span["name"]
            row = rows.setdefault(
                name, {"name": name, "count": 0, "inclusive_us": 0.0,
                       "exclusive_us": 0.0})
            row["count"] += 1
            row["inclusive_us"] += dur
            stack.append([name, ts + dur, 0.0, ts])
        while stack:
            done = stack.pop()
            row = rows[done[0]]
            row["exclusive_us"] += max(0.0, (done[1] - done[3]) - done[2])

    return {
        "tracks": [tracks[pid] for pid in sorted(tracks)],
        "rows": sorted(rows.values(), key=lambda row: -row["inclusive_us"]),
        "counters": trace.get("otherData", {}).get("counters", {}),
        "span_count": len(spans),
    }


def render(summary: dict, top: int = 20) -> str:
    lines = [f"tracks: {', '.join(summary['tracks']) or '(none)'}",
             f"spans:  {summary['span_count']}", ""]
    header = f"{'span':<28} {'count':>8} {'inclusive ms':>13} {'exclusive ms':>13}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in summary["rows"][:top]:
        lines.append(f"{row['name']:<28} {row['count']:>8} "
                     f"{row['inclusive_us'] / 1e3:>13.3f} "
                     f"{row['exclusive_us'] / 1e3:>13.3f}")
    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        for name, value in sorted(summary["counters"].items()):
            lines.append(f"  {name} = {value}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Print a profile summary of a repro trace JSON file.")
    parser.add_argument("trace", help="path to a Session.dump_trace() JSON file")
    parser.add_argument("--top", type=int, default=20,
                        help="number of span rows to print (default 20)")
    args = parser.parse_args(argv)

    with open(args.trace, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    summary = summarize(trace)
    try:
        print(render(summary, top=args.top))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        return 0
    if summary["span_count"] == 0:
        print("warning: trace contains no spans", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
