"""Merge per-track trace records and export them.

:class:`TraceTimeline` collects the :class:`~repro.obs.tracer.TraceRecord`
of every track a run produced — the compile phase, the session lifecycle,
and one track per rank — aligns their monotonic clocks onto a shared
wall-clock axis, and exports either Chrome trace-event JSON (loadable in
Perfetto or ``chrome://tracing``; one process row per track) or an
aggregated profile (inclusive/exclusive seconds per span name, consumed by
``python -m repro.obs.report``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .tracer import TraceRecord


def _exclusive_times(events) -> Dict[str, float]:
    """Per-name exclusive seconds: inclusive minus immediate children.

    *events* are ``(name, start, duration, depth)`` tuples from one track.
    Spans on a track are properly nested (they come from one call stack),
    so a sweep over start-ordered events with an interval stack suffices.
    """
    exclusive: Dict[str, float] = {}
    stack: List[list] = []  # [name, end, child_seconds, start]
    ordered = sorted(events, key=lambda event: (event[1], -event[3]))
    for name, start, duration, _depth in ordered:
        while stack and stack[-1][1] <= start + 1e-12:
            done = stack.pop()
            exclusive[done[0]] = exclusive.get(done[0], 0.0) + max(
                0.0, (done[1] - done[3]) - done[2])
        if stack:
            stack[-1][2] += duration
        stack.append([name, start + duration, 0.0, start])
    while stack:
        done = stack.pop()
        exclusive[done[0]] = exclusive.get(done[0], 0.0) + max(
            0.0, (done[1] - done[3]) - done[2])
    return exclusive


class TraceTimeline:
    """A multi-track timeline assembled from per-tracer records."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self.counts: Dict[str, int] = {}

    def add(self, record: Optional[TraceRecord]) -> None:
        if record is None:
            return
        self.records.append(record)
        for name, value in record.counts.items():
            self.counts[name] = self.counts.get(name, 0) + value

    @property
    def tracks(self) -> List[str]:
        return [record.track for record in self.records]

    # ------------------------------------------------------------------
    # Chrome trace-event JSON.
    # ------------------------------------------------------------------

    def chrome_events(self) -> List[dict]:
        """Trace-event list: ``M`` track-name metadata + ``X`` spans.

        Each record becomes one ``pid`` row named after its track.  Event
        timestamps are microseconds on a shared axis: a span's absolute
        wall time is ``wall_ref + (start - perf_ref)`` — the paired clock
        references captured at tracer construction make monotonic clocks
        from different processes comparable.
        """
        starts = []
        for record in self.records:
            offset = record.wall_ref - record.perf_ref
            starts.extend(offset + start for _, start, _, _ in record.events)
        base = min(starts) if starts else 0.0

        events: List[dict] = []
        for pid, record in enumerate(self.records):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": record.track},
            })
            offset = record.wall_ref - record.perf_ref
            for name, start, duration, _depth in record.events:
                events.append({
                    "name": name, "ph": "X", "cat": "repro",
                    "ts": round((offset + start - base) * 1e6, 3),
                    "dur": round(duration * 1e6, 3),
                    "pid": pid, "tid": 0,
                })
        return events

    def chrome_trace(self) -> dict:
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "tracks": self.tracks,
                "counters": dict(sorted(self.counts.items())),
            },
        }

    def dump(self, path) -> None:
        """Write Chrome trace-event JSON; open the file in Perfetto."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")

    # ------------------------------------------------------------------
    # Aggregated profile.
    # ------------------------------------------------------------------

    def profile(self) -> List[dict]:
        """Aggregate spans across tracks: count, inclusive, exclusive.

        Timeline-mode records contribute exact exclusive times from their
        event stream; summary-mode records (no events) contribute their
        totals with exclusive = inclusive.  Sorted by inclusive seconds,
        descending.
        """
        rows: Dict[str, dict] = {}
        for record in self.records:
            exclusive = _exclusive_times(record.events) if record.events else {}
            for name, (count, seconds) in record.totals.items():
                row = rows.setdefault(
                    name, {"name": name, "count": 0, "inclusive": 0.0,
                           "exclusive": 0.0})
                row["count"] += count
                row["inclusive"] += seconds
                row["exclusive"] += exclusive.get(name, seconds)
        return sorted(rows.values(), key=lambda row: -row["inclusive"])

    def profile_table(self, top: int = 20) -> str:
        """The profile as a fixed-width text table (plus counter totals)."""
        lines = [f"{'span':<28} {'count':>8} {'inclusive s':>12} {'exclusive s':>12}"]
        lines.append("-" * len(lines[0]))
        for row in self.profile()[:top]:
            lines.append(f"{row['name']:<28} {row['count']:>8} "
                         f"{row['inclusive']:>12.6f} {row['exclusive']:>12.6f}")
        if self.counts:
            lines.append("")
            lines.append("counters:")
            for name, value in sorted(self.counts.items()):
                lines.append(f"  {name} = {value}")
        return "\n".join(lines)
