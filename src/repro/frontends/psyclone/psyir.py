"""PSy-IR: the DAG-form intermediate representation of the mini-PSyclone frontend.

PSyclone parses Fortran into a DAG-shaped IR before applying transformations;
this module defines the node classes our Fortran-subset parser produces and a
reference numpy evaluator used as the "native PSyclone" numerical oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class PSyIRNode:
    """Base class of PSy-IR nodes."""


@dataclass
class Literal(PSyIRNode):
    """A numeric literal."""

    value: float


@dataclass
class Reference(PSyIRNode):
    """A reference to a scalar variable (loop index or runtime constant)."""

    name: str


@dataclass
class IndexExpression(PSyIRNode):
    """An array index of the form ``variable + offset``."""

    variable: str
    offset: int = 0


@dataclass
class ArrayReference(PSyIRNode):
    """A reference to an array element, e.g. ``u(i+1, j, k)``."""

    name: str
    indices: tuple[IndexExpression, ...]

    @property
    def offsets(self) -> tuple[int, ...]:
        return tuple(index.offset for index in self.indices)


@dataclass
class BinaryOperation(PSyIRNode):
    """A binary arithmetic operation."""

    operator: str  # one of + - * /
    lhs: PSyIRNode
    rhs: PSyIRNode


@dataclass
class UnaryOperation(PSyIRNode):
    """Unary minus."""

    operand: PSyIRNode


@dataclass
class Comparison(PSyIRNode):
    """A Fortran relational operation producing a mask (``a > b``, ...)."""

    operator: str  # one of > < >= <= == /=
    lhs: PSyIRNode
    rhs: PSyIRNode


@dataclass
class Merge(PSyIRNode):
    """The Fortran ``merge(tsource, fsource, mask)`` intrinsic.

    Evaluates to ``tsource`` where ``mask`` holds and ``fsource`` elsewhere —
    the way NEMO-style tracer kernels express land/sea and upwind masking.
    """

    true_value: PSyIRNode
    false_value: PSyIRNode
    condition: PSyIRNode


@dataclass
class Assignment(PSyIRNode):
    """``lhs = rhs`` where lhs is an array element."""

    lhs: ArrayReference
    rhs: PSyIRNode


@dataclass
class Loop(PSyIRNode):
    """A Fortran ``do`` loop."""

    variable: str
    start: PSyIRNode
    stop: PSyIRNode
    body: list[PSyIRNode] = field(default_factory=list)


@dataclass
class Schedule(PSyIRNode):
    """The routine body: an ordered list of statements."""

    name: str
    arguments: list[str] = field(default_factory=list)
    body: list[PSyIRNode] = field(default_factory=list)

    def walk(self, node_type) -> list:
        found: list = []

        def visit(node) -> None:
            if isinstance(node, node_type):
                found.append(node)
            if isinstance(node, (Schedule, Loop)):
                for child in node.body:
                    visit(child)
            elif isinstance(node, Assignment):
                visit(node.lhs)
                visit(node.rhs)
            elif isinstance(node, (BinaryOperation, Comparison)):
                visit(node.lhs)
                visit(node.rhs)
            elif isinstance(node, UnaryOperation):
                visit(node.operand)
            elif isinstance(node, Merge):
                visit(node.true_value)
                visit(node.false_value)
                visit(node.condition)
            elif isinstance(node, ArrayReference):
                for index in node.indices:
                    visit(index)

        visit(self)
        return found

    def array_names(self) -> list[str]:
        names: list[str] = []
        for ref in self.walk(ArrayReference):
            if ref.name not in names:
                names.append(ref.name)
        return names

    def written_arrays(self) -> list[str]:
        names: list[str] = []
        for assign in self.walk(Assignment):
            if assign.lhs.name not in names:
                names.append(assign.lhs.name)
        return names


# ---------------------------------------------------------------------------
# Reference (numpy) evaluation — the "native PSyclone" numerical oracle
# ---------------------------------------------------------------------------

def reference_execute(
    schedule: Schedule,
    arrays: dict[str, np.ndarray],
    *,
    halo: int,
    iterations: int = 1,
    scalars: Optional[dict[str, float]] = None,
) -> None:
    """Execute the schedule with vectorised numpy, updating ``arrays`` in place.

    Every array shares one interior shape; accesses use the same
    ``interior + offset`` windows the stencil lowering produces, so results
    are directly comparable with the compiled path.
    """
    scalars = scalars or {}
    sample = next(iter(arrays.values()))
    interior_shape = tuple(s - 2 * halo for s in sample.shape)

    def evaluate(node: PSyIRNode):
        if isinstance(node, Literal):
            return node.value
        if isinstance(node, Reference):
            if node.name in scalars:
                return scalars[node.name]
            raise KeyError(f"unknown scalar {node.name!r} in reference execution")
        if isinstance(node, ArrayReference):
            array = arrays[node.name]
            window = tuple(
                slice(halo + off, halo + off + extent)
                for off, extent in zip(node.offsets, interior_shape)
            )
            return array[window]
        if isinstance(node, UnaryOperation):
            return -evaluate(node.operand)
        if isinstance(node, Comparison):
            lhs = evaluate(node.lhs)
            rhs = evaluate(node.rhs)
            comparators = {
                ">": np.greater, "<": np.less, ">=": np.greater_equal,
                "<=": np.less_equal, "==": np.equal, "/=": np.not_equal,
            }
            return comparators[node.operator](lhs, rhs)
        if isinstance(node, Merge):
            return np.where(
                evaluate(node.condition),
                evaluate(node.true_value),
                evaluate(node.false_value),
            )
        if isinstance(node, BinaryOperation):
            lhs = evaluate(node.lhs)
            rhs = evaluate(node.rhs)
            if node.operator == "+":
                return lhs + rhs
            if node.operator == "-":
                return lhs - rhs
            if node.operator == "*":
                return lhs * rhs
            return lhs / rhs
        raise TypeError(f"cannot evaluate PSy-IR node {node!r}")

    interior = tuple(slice(halo, halo + extent) for extent in interior_shape)
    loop_nests = [node for node in schedule.body if isinstance(node, Loop)]
    for _ in range(int(iterations)):
        for nest in loop_nests:
            for assignment in _innermost_assignments(nest):
                arrays[assignment.lhs.name][interior] = evaluate(assignment.rhs)


def _innermost_assignments(loop: Loop) -> list[Assignment]:
    node: PSyIRNode = loop
    while isinstance(node, Loop):
        body = node.body
        if len(body) == 1 and isinstance(body[0], Loop):
            node = body[0]
        else:
            return [stmt for stmt in body if isinstance(stmt, Assignment)]
    return []
