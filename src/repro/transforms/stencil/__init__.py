"""Stencil-dialect transformations: shape inference, fusion and target lowerings."""

from .shape_inference import ShapeInferenceError, StencilShapeInferencePass, infer_shapes
from .stencil_fusion import (
    StencilFusionPass,
    count_stencil_regions,
    fuse_applies,
    stencil_precodegen_pipeline,
)
from .stencil_to_gpu import (
    ConvertStencilToGPUPass,
    count_gpu_kernels,
    count_synchronizations,
    lower_stencil_to_gpu,
)
from .stencil_to_hls import ConvertStencilToHLSPass, HLSKernelInfo, lower_stencil_to_hls
from .stencil_to_scf import (
    ConvertStencilToSCFPass,
    ConvertStencilToSCFTiledPass,
    StencilLoweringError,
    lower_stencil_to_scf,
)

__all__ = [
    "StencilShapeInferencePass", "infer_shapes", "ShapeInferenceError",
    "StencilFusionPass", "fuse_applies", "count_stencil_regions",
    "stencil_precodegen_pipeline",
    "ConvertStencilToSCFPass", "ConvertStencilToSCFTiledPass",
    "lower_stencil_to_scf", "StencilLoweringError",
    "ConvertStencilToGPUPass", "lower_stencil_to_gpu", "count_gpu_kernels",
    "count_synchronizations",
    "ConvertStencilToHLSPass", "lower_stencil_to_hls", "HLSKernelInfo",
]
