"""Attribute system for the SSA+Regions IR.

Attributes are immutable pieces of compile-time information attached to
operations (e.g. the value of a constant, the bounds of a stencil field).
Types are themselves attributes marked with :class:`TypeAttribute`, mirroring
the MLIR/xDSL design where ``i32`` and ``42 : i32`` live in the same
attribute universe.

Every attribute must be hashable and comparable by value so that rewrites and
CSE can treat them as plain data.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence


class Attribute:
    """Base class of all attributes.

    Subclasses must set ``name`` (``dialect.attrname``) and should be
    immutable after construction.  Equality and hashing are structural,
    derived from :meth:`parameters`.
    """

    name: str = "builtin.abstract"

    def parameters(self) -> tuple:
        """Return the tuple of values that define this attribute."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(self) is not type(other):
            return False
        return self.parameters() == other.parameters()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.parameters()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(repr(p) for p in self.parameters())
        return f"{type(self).__name__}({params})"


class TypeAttribute(Attribute):
    """Marker base class: attributes that can be used as SSA value types."""

    name = "builtin.abstract_type"


class Data(Attribute):
    """An attribute wrapping a single python value."""

    __slots__ = ("data",)

    def __init__(self, data: Any):
        self.data = data

    def parameters(self) -> tuple:
        return (self.data,)


class IntAttr(Data):
    """A bare integer attribute (no associated IR type)."""

    name = "builtin.int"

    def __init__(self, data: int):
        super().__init__(int(data))


class FloatData(Data):
    """A bare float attribute (no associated IR type)."""

    name = "builtin.float_data"

    def __init__(self, data: float):
        super().__init__(float(data))


class StringAttr(Data):
    """A string attribute."""

    name = "builtin.string"

    def __init__(self, data: str):
        super().__init__(str(data))


class BoolAttr(Data):
    """A boolean attribute."""

    name = "builtin.bool"

    def __init__(self, data: bool):
        super().__init__(bool(data))


class UnitAttr(Attribute):
    """An attribute that carries no data; its presence is the information."""

    name = "builtin.unit"

    def parameters(self) -> tuple:
        return ()


class ArrayAttr(Attribute):
    """An ordered, immutable collection of attributes."""

    name = "builtin.array"

    __slots__ = ("data",)

    def __init__(self, data: Iterable[Attribute]):
        self.data: tuple[Attribute, ...] = tuple(data)

    def parameters(self) -> tuple:
        return (self.data,)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, index: int) -> Attribute:
        return self.data[index]


class DictionaryAttr(Attribute):
    """A name -> attribute mapping."""

    name = "builtin.dictionary"

    __slots__ = ("data",)

    def __init__(self, data: dict[str, Attribute]):
        self.data: dict[str, Attribute] = dict(data)

    def parameters(self) -> tuple:
        return (tuple(sorted(self.data.items(), key=lambda kv: kv[0])),)

    def __getitem__(self, key: str) -> Attribute:
        return self.data[key]

    def __contains__(self, key: str) -> bool:
        return key in self.data


class SymbolRefAttr(Attribute):
    """A reference to a symbol (e.g. a function) by name."""

    name = "builtin.symbol_ref"

    __slots__ = ("root",)

    def __init__(self, root: str | StringAttr):
        self.root = root.data if isinstance(root, StringAttr) else str(root)

    def parameters(self) -> tuple:
        return (self.root,)

    @property
    def string_value(self) -> str:
        return self.root


class IntegerAttr(Attribute):
    """An integer value together with its IR integer/index type."""

    name = "builtin.integer"

    __slots__ = ("value", "type")

    def __init__(self, value: int, type: TypeAttribute):
        self.value = int(value)
        self.type = type

    def parameters(self) -> tuple:
        return (self.value, self.type)


class FloatAttr(Attribute):
    """A floating point value together with its IR float type."""

    name = "builtin.float"

    __slots__ = ("value", "type")

    def __init__(self, value: float, type: TypeAttribute):
        self.value = float(value)
        self.type = type

    def parameters(self) -> tuple:
        return (self.value, self.type)


class DenseArrayAttr(Attribute):
    """A dense array of integers or floats (used for static index lists)."""

    name = "builtin.dense_array"

    __slots__ = ("data", "element_type")

    def __init__(self, data: Sequence[int | float], element_type: TypeAttribute):
        self.data: tuple = tuple(data)
        self.element_type = element_type

    def parameters(self) -> tuple:
        return (self.data, self.element_type)

    def as_tuple(self) -> tuple:
        return self.data

    def __iter__(self) -> Iterator:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)


class DenseIntOrFPElementsAttr(Attribute):
    """A dense tensor/vector literal (only small literals are used here)."""

    name = "builtin.dense"

    __slots__ = ("data", "type")

    def __init__(self, data: Sequence[int | float], type: TypeAttribute):
        self.data: tuple = tuple(data)
        self.type = type

    def parameters(self) -> tuple:
        return (self.data, self.type)
