"""Table 1: FPGA (Alveo U280) throughput, initial vs dataflow-optimised kernels."""

import numpy as np
import pytest

from bench_helpers import attach_rows
from repro.core import compile_stencil_program, fpga_target
from repro.evaluation import table1_fpga
from repro.workloads import pw_advection


@pytest.mark.benchmark(group="table1")
def test_table1_rows(benchmark):
    rows = benchmark(table1_fpga)
    attach_rows(benchmark, "table1", rows)
    for row in rows:
        assert row["improvement"] > 50
    pw = next(r for r in rows if r["benchmark"] == "pw-134m")
    assert 0.05 < pw["optimized_gpts"] < 0.5


@pytest.mark.benchmark(group="table1-compilation")
@pytest.mark.parametrize("optimize", [False, True], ids=["initial", "optimized"])
def test_hls_compilation(benchmark, optimize):
    """Time the HLS lowering itself (dataflow restructuring + shift buffer)."""
    workload = pw_advection((12, 12, 6), iterations=1)

    def compile_for_fpga():
        module = workload.build_module(dtype=np.float64)
        return compile_stencil_program(module, fpga_target(optimize=optimize))

    program = benchmark(compile_for_fpga)
    assert len(program.hls_kernels) >= 1
    assert all(k.pipelined == optimize for k in program.hls_kernels)
