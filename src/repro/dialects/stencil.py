"""The stencil dialect.

This is the shared abstraction the three DSL frontends lower into.  Compared
to the original Open Earth Compiler dialect it follows the paper's extensions
(section 4.1):

* domain bounds are attached to the *types* (``!stencil.field<[0,128]xf64>``)
  rather than as operation attributes, so any consumer can read them off its
  operands;
* stencils of any rank (1D/2D/3D/...) are supported;
* value semantics: ``stencil.load`` produces a ``!stencil.temp`` that
  ``stencil.apply`` consumes, and ``stencil.store`` writes results back to a
  field over a user-defined range.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Sequence

from ..ir.attributes import Attribute, DenseArrayAttr, IntAttr, TypeAttribute
from ..ir.builder import build_single_block_region
from ..ir.context import Dialect
from ..ir.core import BlockArgument, Operation, Region, SSAValue
from ..ir.traits import IsTerminator, MemoryReadEffect, MemoryWriteEffect, Pure
from ..ir.types import Float32Type, Float64Type, IndexType, IntegerType, i64, index


class StencilBoundsAttr(Attribute):
    """Rectangular bounds ``[lb, ub)`` per dimension, in logical coordinates."""

    name = "stencil.bounds"

    __slots__ = ("lb", "ub")

    def __init__(self, lb: Sequence[int], ub: Sequence[int]):
        if len(lb) != len(ub):
            raise ValueError("stencil bounds lb/ub must have the same rank")
        self.lb: tuple[int, ...] = tuple(int(v) for v in lb)
        self.ub: tuple[int, ...] = tuple(int(v) for v in ub)
        for low, high in zip(self.lb, self.ub):
            if high < low:
                raise ValueError(f"stencil bounds upper bound {high} below lower {low}")

    def parameters(self) -> tuple:
        return (self.lb, self.ub)

    @property
    def rank(self) -> int:
        return len(self.lb)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(u - l for l, u in zip(self.lb, self.ub))

    def size(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def grown_by(self, lower: Sequence[int], upper: Sequence[int]) -> "StencilBoundsAttr":
        """Bounds extended by ``lower`` below and ``upper`` above, per dimension."""
        return StencilBoundsAttr(
            [l - g for l, g in zip(self.lb, lower)],
            [u + g for u, g in zip(self.ub, upper)],
        )

    def intersect(self, other: "StencilBoundsAttr") -> "StencilBoundsAttr":
        return StencilBoundsAttr(
            [max(a, b) for a, b in zip(self.lb, other.lb)],
            [min(a, b) for a, b in zip(self.ub, other.ub)],
        )

    def contains(self, other: "StencilBoundsAttr") -> bool:
        return all(sl <= ol for sl, ol in zip(self.lb, other.lb)) and all(
            su >= ou for su, ou in zip(self.ub, other.ub)
        )

    def print_parameters(self, printer) -> str:
        return "x".join(f"[{l},{u}]" for l, u in zip(self.lb, self.ub))

    @classmethod
    def parse_parameters(cls, text: str) -> "StencilBoundsAttr":
        pairs = re.findall(r"\[\s*(-?\d+)\s*,\s*(-?\d+)\s*\]", text)
        lb = [int(p[0]) for p in pairs]
        ub = [int(p[1]) for p in pairs]
        return cls(lb, ub)

    def __str__(self) -> str:
        return self.print_parameters(None)


def _element_type_to_text(element_type: Attribute) -> str:
    if isinstance(element_type, Float64Type):
        return "f64"
    if isinstance(element_type, Float32Type):
        return "f32"
    if isinstance(element_type, IntegerType):
        return f"i{element_type.width}"
    if isinstance(element_type, IndexType):
        return "index"
    raise ValueError(f"unsupported stencil element type {element_type}")


def _element_type_from_text(text: str) -> Attribute:
    from ..ir.types import f32, f64

    text = text.strip()
    if text == "f64":
        return f64
    if text == "f32":
        return f32
    if text == "index":
        return index
    match = re.fullmatch(r"i(\d+)", text)
    if match:
        return IntegerType(int(match.group(1)))
    raise ValueError(f"unsupported stencil element type {text!r}")


class _StencilContainerType(TypeAttribute):
    """Shared implementation for field and temp types."""

    __slots__ = ("bounds", "element_type")

    def __init__(
        self,
        bounds: Optional[StencilBoundsAttr | Sequence[Sequence[int]]],
        element_type: Attribute,
        rank: Optional[int] = None,
    ):
        if bounds is not None and not isinstance(bounds, StencilBoundsAttr):
            lb, ub = bounds
            bounds = StencilBoundsAttr(lb, ub)
        self.bounds: Optional[StencilBoundsAttr] = bounds
        self.element_type = element_type
        self._rank_hint = rank

    def parameters(self) -> tuple:
        return (self.bounds, self.element_type, self._rank_hint)

    @property
    def rank(self) -> int:
        if self.bounds is not None:
            return self.bounds.rank
        if self._rank_hint is not None:
            return self._rank_hint
        raise ValueError("rank of an unbounded stencil type is unknown")

    @property
    def shape(self) -> tuple[int, ...]:
        if self.bounds is None:
            raise ValueError("shape of an unbounded stencil type is unknown")
        return self.bounds.shape

    def has_bounds(self) -> bool:
        return self.bounds is not None

    def print_parameters(self, printer) -> str:
        if self.bounds is None:
            rank = self._rank_hint or 1
            dims = "x".join("?" for _ in range(rank))
            return f"{dims}x{_element_type_to_text(self.element_type)}"
        return (
            self.bounds.print_parameters(printer)
            + "x"
            + _element_type_to_text(self.element_type)
        )

    @classmethod
    def parse_parameters(cls, text: str):
        text = text.strip()
        # Either "[l,u]x[l,u]x<elem>" or "?x?x<elem>".
        element_text = text.rsplit("x", 1)[-1]
        element_type = _element_type_from_text(element_text)
        body = text[: len(text) - len(element_text)].rstrip("x")
        if "?" in body or body == "":
            rank = body.count("?") or 1
            return cls(None, element_type, rank=rank)
        bounds = StencilBoundsAttr.parse_parameters(body)
        return cls(bounds, element_type)

    def __str__(self) -> str:
        return f"!{self.name}<{self.print_parameters(None)}>"


class FieldType(_StencilContainerType):
    """The memory buffer stencil values are loaded from / stored to."""

    name = "stencil.field"


class TempType(_StencilContainerType):
    """Value-semantics stencil values produced by load/apply."""

    name = "stencil.temp"


class ResultType(TypeAttribute):
    """The type of a value yielded by stencil.return inside an apply."""

    name = "stencil.result"

    __slots__ = ("element_type",)

    def __init__(self, element_type: Attribute):
        self.element_type = element_type

    def parameters(self) -> tuple:
        return (self.element_type,)

    def print_parameters(self, printer) -> str:
        return _element_type_to_text(self.element_type)

    @classmethod
    def parse_parameters(cls, text: str) -> "ResultType":
        return cls(_element_type_from_text(text))


def offsets_attr(offsets: Sequence[int]) -> DenseArrayAttr:
    """An offset vector encoded as a dense i64 array attribute."""
    return DenseArrayAttr([int(o) for o in offsets], i64)


class AllocOp(Operation):
    """Allocate a stencil field buffer with the bounds carried by its type."""

    name = "stencil.alloc"

    def __init__(self, result_type: FieldType):
        if result_type.bounds is None:
            raise ValueError("stencil.alloc requires a field type with static bounds")
        super().__init__(result_types=[result_type])

    @property
    def field(self) -> SSAValue:
        return self.results[0]


class ExternalLoadOp(Operation):
    """View an externally provided memref as a stencil field."""

    name = "stencil.external_load"
    traits = frozenset([Pure()])

    def __init__(self, source: SSAValue, result_type: FieldType):
        super().__init__(operands=[source], result_types=[result_type])

    @property
    def field(self) -> SSAValue:
        return self.results[0]


class ExternalStoreOp(Operation):
    """Write a stencil field back to an externally provided memref."""

    name = "stencil.external_store"
    traits = frozenset([MemoryWriteEffect()])

    def __init__(self, field: SSAValue, target: SSAValue):
        super().__init__(operands=[field, target])


class CastOp(Operation):
    """Cast a field to different (usually tighter) bounds."""

    name = "stencil.cast"
    traits = frozenset([Pure()])

    def __init__(self, field: SSAValue, result_type: FieldType):
        super().__init__(operands=[field], result_types=[result_type])

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class LoadOp(Operation):
    """Load the values of a field into a temp for use by stencil.apply."""

    name = "stencil.load"
    traits = frozenset([MemoryReadEffect()])

    def __init__(self, field: SSAValue, result_type: Optional[TempType] = None):
        field_type = field.type
        if result_type is None:
            if not isinstance(field_type, FieldType):
                raise ValueError("stencil.load expects a !stencil.field operand")
            result_type = TempType(field_type.bounds, field_type.element_type,
                                   rank=field_type.rank if field_type.bounds is None else None)
        super().__init__(operands=[field], result_types=[result_type])

    @property
    def field(self) -> SSAValue:
        return self.operands[0]

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if not isinstance(self.field.type, FieldType):
            raise ValueError("stencil.load expects a !stencil.field operand")
        if not isinstance(self.results[0].type, TempType):
            raise ValueError("stencil.load must produce a !stencil.temp value")


class StoreOp(Operation):
    """Store a temp into a field over the range [lb, ub)."""

    name = "stencil.store"
    traits = frozenset([MemoryWriteEffect()])

    def __init__(self, temp: SSAValue, field: SSAValue, bounds: StencilBoundsAttr):
        super().__init__(operands=[temp, field], attributes={"bounds": bounds})

    @property
    def temp(self) -> SSAValue:
        return self.operands[0]

    @property
    def field(self) -> SSAValue:
        return self.operands[1]

    @property
    def bounds(self) -> StencilBoundsAttr:
        attr = self.attributes["bounds"]
        assert isinstance(attr, StencilBoundsAttr)
        return attr

    def verify_(self) -> None:
        if not isinstance(self.temp.type, TempType):
            raise ValueError("stencil.store expects a !stencil.temp value operand")
        if not isinstance(self.field.type, FieldType):
            raise ValueError("stencil.store expects a !stencil.field target operand")
        field_type = self.field.type
        if field_type.bounds is not None and not field_type.bounds.contains(self.bounds):
            raise ValueError(
                f"stencil.store range {self.bounds} exceeds the field bounds "
                f"{field_type.bounds}"
            )


class ApplyOp(Operation):
    """Apply a stencil function (the region) over the whole iteration domain.

    The region has one block argument per operand; ``stencil.access`` reads a
    value at a relative offset from those arguments, and ``stencil.return``
    yields the outputs for the current grid point.
    """

    name = "stencil.apply"

    def __init__(
        self,
        operands: Sequence[SSAValue],
        result_types: Sequence[TempType],
        body: Optional[Region] = None,
    ):
        if body is None:
            body = build_single_block_region(arg_types=[o.type for o in operands])
        super().__init__(
            operands=list(operands),
            result_types=list(result_types),
            regions=[body],
        )

    @property
    def body(self) -> Region:
        return self.regions[0]

    @property
    def region_args(self) -> list[BlockArgument]:
        return list(self.body.block.args)

    def operand_for_region_arg(self, arg: BlockArgument) -> SSAValue:
        return self.operands[arg.index]

    def access_offsets(self) -> dict[int, list[tuple[int, ...]]]:
        """Offsets of every stencil.access in the body, keyed by operand index."""
        offsets: dict[int, list[tuple[int, ...]]] = {}
        for op in self.body.walk():
            if isinstance(op, AccessOp):
                temp = op.temp
                if isinstance(temp, BlockArgument) and temp.block is self.body.block:
                    offsets.setdefault(temp.index, []).append(op.offset)
        return offsets

    def halo_extents(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The (negative, positive) halo radius per dimension over all accesses."""
        rank = None
        for result in self.results:
            result_type = result.type
            if isinstance(result_type, TempType):
                try:
                    rank = result_type.rank
                except ValueError:
                    rank = None
                break
        all_offsets = [o for offs in self.access_offsets().values() for o in offs]
        if rank is None:
            rank = len(all_offsets[0]) if all_offsets else 0
        lower = [0] * rank
        upper = [0] * rank
        for offset in all_offsets:
            for d, component in enumerate(offset):
                lower[d] = max(lower[d], max(0, -component))
                upper[d] = max(upper[d], max(0, component))
        return tuple(lower), tuple(upper)

    def verify_(self) -> None:
        block = self.body.block
        if len(block.args) != len(self.operands):
            raise ValueError(
                "stencil.apply region must have one argument per operand"
            )
        for arg, operand in zip(block.args, self.operands):
            if arg.type != operand.type:
                raise ValueError(
                    "stencil.apply region argument types must match the operand types"
                )
        if block.ops and not isinstance(block.last_op, ReturnOp):
            raise ValueError("stencil.apply body must end with stencil.return")
        if block.ops:
            terminator = block.last_op
            assert isinstance(terminator, ReturnOp)
            if len(terminator.operands) != len(self.results):
                raise ValueError(
                    "stencil.return must yield one value per stencil.apply result"
                )


class AccessOp(Operation):
    """Read a value from a temp at a constant offset from the current position."""

    name = "stencil.access"
    traits = frozenset([Pure()])

    def __init__(self, temp: SSAValue, offset: Sequence[int]):
        temp_type = temp.type
        if not isinstance(temp_type, TempType):
            raise ValueError("stencil.access expects a !stencil.temp operand")
        super().__init__(
            operands=[temp],
            attributes={"offset": offsets_attr(offset)},
            result_types=[temp_type.element_type],
        )

    @property
    def temp(self) -> SSAValue:
        return self.operands[0]

    @property
    def offset(self) -> tuple[int, ...]:
        attr = self.attributes["offset"]
        assert isinstance(attr, DenseArrayAttr)
        return tuple(int(v) for v in attr.data)

    @property
    def result(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        temp_type = self.temp.type
        if not isinstance(temp_type, TempType):
            raise ValueError("stencil.access expects a !stencil.temp operand")
        if temp_type.bounds is not None and len(self.offset) != temp_type.rank:
            raise ValueError(
                f"stencil.access offset rank {len(self.offset)} does not match the "
                f"temp rank {temp_type.rank}"
            )


class IndexOp(Operation):
    """The current logical index along one dimension (for boundary conditions)."""

    name = "stencil.index"
    traits = frozenset([Pure()])

    def __init__(self, dim: int, offset: int = 0):
        super().__init__(
            attributes={"dim": IntAttr(dim), "offset": IntAttr(offset)},
            result_types=[index],
        )

    @property
    def dim(self) -> int:
        attr = self.attributes["dim"]
        assert isinstance(attr, IntAttr)
        return attr.data

    @property
    def result(self) -> SSAValue:
        return self.results[0]


class ReturnOp(Operation):
    """Yield the output values for the current grid point from a stencil.apply."""

    name = "stencil.return"
    traits = frozenset([IsTerminator(), Pure()])

    def __init__(self, values: Sequence[SSAValue]):
        super().__init__(operands=list(values))


def apply_ops_of(module: Operation) -> list[ApplyOp]:
    """All stencil.apply operations under ``module`` in program order."""
    return [op for op in module.walk() if isinstance(op, ApplyOp)]


def combined_halo(applies: Iterable[ApplyOp]) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """The element-wise maximum halo over several apply operations."""
    lowers: list[tuple[int, ...]] = []
    uppers: list[tuple[int, ...]] = []
    for apply_op in applies:
        low, up = apply_op.halo_extents()
        lowers.append(low)
        uppers.append(up)
    if not lowers:
        return (), ()
    rank = max(len(l) for l in lowers)
    low_out = [0] * rank
    up_out = [0] * rank
    for low, up in zip(lowers, uppers):
        for d in range(len(low)):
            low_out[d] = max(low_out[d], low[d])
            up_out[d] = max(up_out[d], up[d])
    return tuple(low_out), tuple(up_out)


Stencil = Dialect(
    "stencil",
    [
        AllocOp, ExternalLoadOp, ExternalStoreOp, CastOp, LoadOp, StoreOp,
        ApplyOp, AccessOp, IndexOp, ReturnOp,
    ],
    [FieldType, TempType, ResultType, StencilBoundsAttr],
)
