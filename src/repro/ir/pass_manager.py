"""Compilation passes and the pass manager.

A :class:`ModulePass` transforms a module in place.  The :class:`PassManager`
runs a sequence of passes, optionally verifying the IR between passes and
recording per-pass statistics, mirroring ``mlir-opt`` pipelines such as
``--cse --loop-invariant-code-motion --convert-stencil-to-ll-mlir``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .context import MLContext
from .core import Operation


class PassFailedError(Exception):
    """Raised when a pass cannot be applied to the given module."""


class ModulePass:
    """Base class for module-level passes."""

    name: str = "unnamed-pass"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<pass {self.name}>"


class FunctionPass(ModulePass):
    """A pass applied independently to every ``func.func`` in the module."""

    def apply(self, ctx: MLContext, module: Operation) -> None:
        from ..dialects import func as func_dialect

        for op in list(module.walk()):
            if isinstance(op, func_dialect.FuncOp):
                self.apply_to_function(ctx, op)

    def apply_to_function(self, ctx: MLContext, func_op: Operation) -> None:
        raise NotImplementedError


class LambdaPass(ModulePass):
    """Wrap a plain callable as a pass (useful in tests and pipelines)."""

    def __init__(self, name: str, fn: Callable[[MLContext, Operation], None]):
        self.name = name
        self._fn = fn

    def apply(self, ctx: MLContext, module: Operation) -> None:
        self._fn(ctx, module)


@dataclass
class PassStatistics:
    """Timing and change information for a single pass execution."""

    pass_name: str
    seconds: float
    ops_before: int
    ops_after: int

    @property
    def ops_delta(self) -> int:
        return self.ops_after - self.ops_before


@dataclass
class PipelineReport:
    """Statistics for a whole pipeline run."""

    statistics: list[PassStatistics] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.statistics)

    def summary(self) -> str:
        lines = ["pass".ljust(42) + "time (s)".rjust(10) + "ops".rjust(8)]
        for stat in self.statistics:
            lines.append(
                stat.pass_name.ljust(42)
                + f"{stat.seconds:10.4f}"
                + f"{stat.ops_after:8d}"
            )
        return "\n".join(lines)


class PassManager:
    """Runs a sequence of passes over a module."""

    def __init__(
        self,
        ctx: MLContext,
        passes: Iterable[ModulePass] = (),
        *,
        verify_between_passes: bool = True,
    ):
        self.ctx = ctx
        self.passes: list[ModulePass] = list(passes)
        self.verify_between_passes = verify_between_passes
        self.report = PipelineReport()

    def add(self, pass_: ModulePass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Operation) -> PipelineReport:
        """Apply every pass in order; return the pipeline report.

        When a :func:`repro.obs.compile_tracing` scope is active on this
        thread, every pass additionally lands there as a ``pass.<name>``
        span, so per-pass wall times reach exported timelines instead of
        being measured and discarded.
        """
        from ..obs import current_compile_tracer

        tracer = current_compile_tracer()
        if self.verify_between_passes:
            module.verify()
        for pass_ in self.passes:
            ops_before = _count_ops(module)
            span = tracer.begin(f"pass.{pass_.name}") if tracer is not None else 0.0
            start = time.perf_counter()
            pass_.apply(self.ctx, module)
            elapsed = time.perf_counter() - start
            if tracer is not None:
                tracer.end(f"pass.{pass_.name}", span)
            if self.verify_between_passes:
                try:
                    module.verify()
                except Exception as err:  # re-raise with pass context
                    raise PassFailedError(
                        f"IR verification failed after pass {pass_.name!r}: {err}"
                    ) from err
            self.report.statistics.append(
                PassStatistics(pass_.name, elapsed, ops_before, _count_ops(module))
            )
        return self.report

    @property
    def timings(self) -> list[tuple[str, float]]:
        """Per-pass ``(name, seconds)`` wall times from the last run(s)."""
        return [(stat.pass_name, stat.seconds) for stat in self.report.statistics]

    def pipeline_string(self) -> str:
        """A human-readable description of the pipeline (mlir-opt style)."""
        return ",".join(p.name for p in self.passes)


def _count_ops(module: Operation) -> int:
    return sum(1 for _ in module.walk())


class PassRegistry:
    """Global registry of passes addressable by name (for pipeline strings)."""

    _registry: dict[str, Callable[[], ModulePass]] = {}

    @classmethod
    def register(cls, name: str, factory: Optional[Callable[[], ModulePass]] = None):
        def decorator(target):
            cls._registry[name] = target
            return target

        if factory is not None:
            cls._registry[name] = factory
            return factory
        return decorator

    @classmethod
    def get(cls, name: str) -> ModulePass:
        if name not in cls._registry:
            raise KeyError(
                f"unknown pass {name!r}; known passes: {sorted(cls._registry)}"
            )
        return cls._registry[name]()

    @classmethod
    def known_passes(cls) -> list[str]:
        return sorted(cls._registry)

    @classmethod
    def parse_pipeline(cls, ctx: MLContext, pipeline: str) -> PassManager:
        """Build a pass manager from a comma-separated pipeline string."""
        names = [name.strip() for name in pipeline.split(",") if name.strip()]
        return PassManager(ctx, [cls.get(name) for name in names])
