"""Domain decomposition strategies (paper §4.2).

A :class:`DecompositionStrategy` knows how to split a global stencil domain
over a Cartesian grid of MPI ranks, and how to generate the halo-exchange
declarations (``#dmp.exchange`` attributes) from the stencil access pattern.
The default :class:`GridSlicingStrategy` supports 1D, 2D and 3D slicing, as in
the paper; adopters can plug in their own strategy (e.g. with diagonal
exchanges) by implementing the same interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ...dialects.dmp import ExchangeAttr, GridAttr
from ...dialects.stencil import StencilBoundsAttr


class DecompositionError(Exception):
    """Raised when a domain cannot be decomposed over the requested rank grid."""


@dataclass(frozen=True)
class LocalDomain:
    """The result of decomposing a global domain for one (generic) rank.

    All ranks share the same local shape (equal decomposition), so a single
    SPMD module can be generated; only the mapping of local to global
    coordinates differs per rank and is handled by the data scatter/gather.
    """

    #: Core (owned) extent per dimension, halo excluded.
    core_shape: tuple[int, ...]
    #: Halo width below the core, per dimension.
    halo_lower: tuple[int, ...]
    #: Halo width above the core, per dimension.
    halo_upper: tuple[int, ...]

    @property
    def rank(self) -> int:
        return len(self.core_shape)

    @property
    def buffer_shape(self) -> tuple[int, ...]:
        """Shape of the local buffer including halos."""
        return tuple(
            lo + core + hi
            for lo, core, hi in zip(self.halo_lower, self.core_shape, self.halo_upper)
        )

    def field_bounds(self) -> StencilBoundsAttr:
        """Local field bounds in local logical coordinates (core starts at 0)."""
        return StencilBoundsAttr(
            [-lo for lo in self.halo_lower],
            [core + hi for core, hi in zip(self.core_shape, self.halo_upper)],
        )

    def compute_bounds(self) -> StencilBoundsAttr:
        """Local compute/store bounds (the core) in local logical coordinates."""
        return StencilBoundsAttr([0] * self.rank, list(self.core_shape))


class DecompositionStrategy(ABC):
    """Interface used by the global-to-local rewrite pass."""

    @abstractmethod
    def rank_grid(self) -> GridAttr:
        """The Cartesian topology of the participating ranks."""

    @abstractmethod
    def local_domain(
        self,
        global_shape: Sequence[int],
        halo_lower: Sequence[int],
        halo_upper: Sequence[int],
    ) -> LocalDomain:
        """Split a global core domain into the (identical) per-rank local domain."""

    @abstractmethod
    def exchanges(self, domain: LocalDomain) -> list[ExchangeAttr]:
        """Halo exchange declarations for the local buffer of ``domain``."""

    def global_slab(
        self, global_shape: Sequence[int], rank: int
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(start, end) of the core slab owned by ``rank`` in global coordinates."""
        grid = self.rank_grid()
        coords = grid.coords_of(rank)
        starts = []
        ends = []
        for dim, extent in enumerate(global_shape):
            if dim < grid.ndims:
                per_rank = extent // grid.shape[dim]
                starts.append(coords[dim] * per_rank)
                ends.append((coords[dim] + 1) * per_rank)
            else:
                starts.append(0)
                ends.append(extent)
        return tuple(starts), tuple(ends)


class GridSlicingStrategy(DecompositionStrategy):
    """Equal slicing of the leading dimensions over a Cartesian rank grid.

    ``grid_shape`` gives the number of ranks along each decomposed dimension;
    trailing dimensions of the domain are not decomposed.  This is the default
    1D/2D/3D slicing strategy of the paper.
    """

    def __init__(self, grid_shape: Sequence[int]):
        self.grid_shape = tuple(int(g) for g in grid_shape)
        if not self.grid_shape:
            raise DecompositionError("the rank grid must have at least one dimension")
        if any(g < 1 for g in self.grid_shape):
            raise DecompositionError("rank grid dimensions must be positive")

    def rank_grid(self) -> GridAttr:
        return GridAttr(self.grid_shape)

    @property
    def rank_count(self) -> int:
        return self.rank_grid().rank_count

    def local_domain(
        self,
        global_shape: Sequence[int],
        halo_lower: Sequence[int],
        halo_upper: Sequence[int],
    ) -> LocalDomain:
        global_shape = tuple(int(s) for s in global_shape)
        if len(self.grid_shape) > len(global_shape):
            raise DecompositionError(
                f"cannot decompose a {len(global_shape)}D domain over a "
                f"{len(self.grid_shape)}D rank grid"
            )
        core = []
        for dim, extent in enumerate(global_shape):
            if dim < len(self.grid_shape):
                ranks = self.grid_shape[dim]
                if extent % ranks != 0:
                    raise DecompositionError(
                        f"dimension {dim} of extent {extent} is not divisible by the "
                        f"rank grid extent {ranks}"
                    )
                core.append(extent // ranks)
            else:
                core.append(extent)
        return LocalDomain(
            core_shape=tuple(core),
            halo_lower=tuple(int(h) for h in halo_lower),
            halo_upper=tuple(int(h) for h in halo_upper),
        )

    def exchanges(self, domain: LocalDomain) -> list[ExchangeAttr]:
        """One exchange per decomposed dimension and direction (no diagonals)."""
        rank = domain.rank
        grid_dims = len(self.grid_shape)
        exchanges: list[ExchangeAttr] = []
        for dim in range(min(grid_dims, rank)):
            if self.grid_shape[dim] == 1:
                continue
            for direction, width in ((-1, domain.halo_lower[dim]), (+1, domain.halo_upper[dim])):
                if width == 0:
                    continue
                offset = list(domain.halo_lower)  # start of the core region
                size = list(domain.core_shape)
                source_offset = [0] * rank
                neighbor = [0] * grid_dims
                if direction < 0:
                    # Receive into the low-side halo strip; send the first
                    # ``width`` core cells to the lower neighbour.
                    offset[dim] = domain.halo_lower[dim] - width
                    size[dim] = width
                    source_offset[dim] = width
                else:
                    # Receive into the high-side halo strip; send the last
                    # ``width`` core cells to the upper neighbour.
                    offset[dim] = domain.halo_lower[dim] + domain.core_shape[dim]
                    size[dim] = width
                    source_offset[dim] = -width
                neighbor[dim] = direction
                exchanges.append(
                    ExchangeAttr(offset, size, source_offset, neighbor)
                )
        return exchanges


def strategy_for_grid(grid_shape: Sequence[int]) -> GridSlicingStrategy:
    """Convenience constructor used by the pipelines and benchmarks."""
    return GridSlicingStrategy(grid_shape)


def communicated_elements_per_step(
    strategy: DecompositionStrategy,
    global_shape: Sequence[int],
    halo_lower: Sequence[int],
    halo_upper: Sequence[int],
) -> int:
    """Total number of elements one rank exchanges per halo swap."""
    domain = strategy.local_domain(global_shape, halo_lower, halo_upper)
    return sum(exchange.element_count() for exchange in strategy.exchanges(domain))
