"""Eliminate redundant halo exchanges.

The global-to-local pass conservatively inserts one ``dmp.swap`` before every
``stencil.load``.  When several loads of the same (unmodified) buffer occur in
a row — e.g. a fused stencil region reading one field through several loads —
the later swaps exchange data that is already up to date.  This pass removes a
swap when the same buffer was already swapped earlier in the block and nothing
in between may have written to memory (paper §4.2: "a subsequent pass
eliminates them via analyzing the SSA data flow").
"""

from __future__ import annotations

from ...dialects.builtin import UnrealizedConversionCastOp
from ...dialects.dmp import SwapOp
from ...ir.context import MLContext
from ...ir.core import Block, Operation, SSAValue
from ...ir.pass_manager import ModulePass, PassRegistry
from ...ir.traits import MemoryWriteEffect


def _underlying_buffer(value: SSAValue) -> SSAValue:
    """Trace through conversion casts back to the field/buffer being swapped."""
    current = value
    while True:
        owner = current.owner
        if isinstance(owner, UnrealizedConversionCastOp):
            current = owner.input
            continue
        return current


def _may_write_memory(op: Operation) -> bool:
    for nested in op.walk():
        if isinstance(nested, SwapOp):
            continue
        if nested.has_trait(MemoryWriteEffect):
            return True
        if nested.name in ("func.call",):
            return True
    return False


def _eliminate_in_block(block: Block) -> int:
    eliminated = 0
    already_swapped: dict[int, SwapOp] = {}
    for op in list(block.ops):
        if op.parent is None:
            continue
        if isinstance(op, SwapOp):
            buffer = _underlying_buffer(op.data)
            key = id(buffer)
            previous = already_swapped.get(key)
            if previous is not None and previous.attributes == op.attributes:
                cast_op = op.data.owner
                op.erase()
                if (
                    isinstance(cast_op, UnrealizedConversionCastOp)
                    and not cast_op.output.uses
                ):
                    cast_op.erase()
                eliminated += 1
            else:
                already_swapped[key] = op
            continue
        if _may_write_memory(op):
            # Any write invalidates halo freshness for every buffer (a field's
            # buffer identity is not tracked through stores precisely).
            already_swapped.clear()
        # Recurse into nested blocks with a fresh scope.
        for region in op.regions:
            for nested_block in region.blocks:
                eliminated += _eliminate_in_block(nested_block)
    return eliminated


def eliminate_redundant_swaps(module: Operation) -> int:
    """Remove redundant dmp.swap operations; return how many were removed."""
    total = 0
    for region in module.regions:
        for block in region.blocks:
            total += _eliminate_in_block(block)
    return total


class RedundantSwapEliminationPass(ModulePass):
    """Drop halo exchanges whose data is already up to date."""

    name = "dmp-eliminate-redundant-swaps"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        eliminate_redundant_swaps(module)


PassRegistry.register("dmp-eliminate-redundant-swaps", RedundantSwapEliminationPass)
