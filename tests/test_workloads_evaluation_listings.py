"""Tests of the workload generators, the evaluation harness, and the paper listings."""

import numpy as np

from repro.dialects import dmp, func, llvm, memref, mpi, stencil
from repro.evaluation import (
    figure7_devito_cpu,
    figure8_strong_scaling,
    figure9_devito_gpu,
    figure10a_psyclone_cpu,
    figure10b_psyclone_gpu,
    figure11_psyclone_scaling,
    format_rows,
    table1_fpga,
)
from repro.frontends.psyclone import extract_stencils
from repro.ir import Builder, FunctionType, MemRefType, f64, i32, print_module
from repro.transforms.mpi import lower_mpi_to_func
from repro.transforms.stencil import fuse_applies, infer_shapes
from repro.workloads import (
    acoustic_wave,
    heat_diffusion,
    kernel_label,
    pw_advection,
    tracer_advection,
)


class TestWorkloads:
    def test_heat_and_wave_construction(self):
        heat = heat_diffusion((16, 16), space_order=4)
        wave = acoustic_wave((8, 8, 8), space_order=2)
        assert heat.function.time_order == 1 and wave.function.time_order == 2
        assert heat.space_order == 4
        assert heat.dt > 0 and wave.dt > 0
        heat.initialise()
        assert np.isfinite(heat.function.data_with_halo).all()

    def test_kernel_labels_match_paper(self):
        assert kernel_label("heat", 2, 2) == "heat2d-5pt"
        assert kernel_label("heat", 2, 8) == "heat2d-13pt"
        assert kernel_label("wave", 3, 8) == "wave3d-19pt"

    def test_heat_native_vs_xdsl_small(self):
        results = {}
        for backend in ("native", "xdsl"):
            workload = heat_diffusion((12, 12), space_order=2, dtype=np.float64)
            workload.initialise(seed=2)
            workload.operator(backend=backend).apply(time=3, dt=workload.dt)
            results[backend] = workload.function.data.copy()
        assert np.allclose(results["native"], results["xdsl"], atol=1e-12)

    def test_pw_advection_structure(self):
        workload = pw_advection(shape=(8, 8, 4))
        stencils = extract_stencils(workload.schedule)
        assert len(stencils) == 3
        module = workload.build_module()
        infer_shapes(module)
        assert fuse_applies(module) == 1  # the three stencils fuse into one region

    def test_tracer_advection_structure(self):
        workload = tracer_advection(shape=(8, 8, 4), iterations=100, computations=24)
        stencils = extract_stencils(workload.schedule)
        assert len(stencils) == 24
        assert workload.iterations == 100
        module = workload.build_module()
        infer_shapes(module)
        fuse_applies(module)
        # Dependencies prevent full fusion: many regions remain.
        assert len(stencil.apply_ops_of(module)) > 10


class TestEvaluationHarness:
    def test_figure7_shape(self):
        rows = figure7_devito_cpu(kinds=("heat",))
        assert len(rows) == 6
        by_kernel = {row["kernel"]: row for row in rows}
        # 2D: the shared stack wins; 3D high order: Devito wins (paper fig. 7a).
        assert by_kernel["heat2d-5pt"]["speedup_xdsl_over_devito"] > 1.0
        assert by_kernel["heat2d-13pt"]["speedup_xdsl_over_devito"] > 1.0
        assert by_kernel["heat3d-13pt"]["speedup_xdsl_over_devito"] < 1.0
        assert by_kernel["heat3d-19pt"]["speedup_xdsl_over_devito"] < 1.0

    def test_figure8_shape(self):
        rows = figure8_strong_scaling(node_counts=(1, 4, 16))
        xdsl = [r for r in rows if r["stack"] == "xdsl" and r["figure"] == "8a"]
        devito = [r for r in rows if r["stack"] == "devito" and r["figure"] == "8a"]
        assert [r["nodes"] for r in xdsl] == [1, 4, 16]
        # Throughput grows with node count for both stacks; Devito scales at
        # least as well as xDSL (advanced communication, paper fig. 8).
        assert xdsl[-1]["gpts"] > xdsl[0]["gpts"]
        assert devito[-1]["parallel_efficiency"] >= xdsl[-1]["parallel_efficiency"]

    def test_figure9_shape(self):
        rows = figure9_devito_gpu(kinds=("heat",))
        three_d = [r for r in rows if r["ndim"] == 3]
        two_d = [r for r in rows if r["ndim"] == 2]
        assert all(r["speedup_xdsl_over_openacc"] >= 1.3 for r in three_d)
        assert all(0.9 <= r["speedup_xdsl_over_openacc"] <= 1.3 for r in two_d)

    def test_figure10a_shape(self):
        rows = figure10a_psyclone_cpu()
        pw = [r for r in rows if r["benchmark"].startswith("pw")]
        traadv_small = next(r for r in rows if r["benchmark"] == "traadv-4m")
        traadv_large = next(r for r in rows if r["benchmark"] == "traadv-128m")
        # PW advection: xDSL slightly ahead of Cray, GNU well behind.
        assert all(r["xdsl_gpts"] > r["cray_gpts"] > r["gnu_gpts"] for r in pw)
        # Tracer advection: xDSL behind at small sizes, gap narrows with size.
        assert traadv_small["xdsl_gpts"] < traadv_small["cray_gpts"]
        small_ratio = traadv_small["xdsl_gpts"] / traadv_small["cray_gpts"]
        large_ratio = traadv_large["xdsl_gpts"] / traadv_large["cray_gpts"]
        assert large_ratio > small_ratio

    def test_figure10b_shape(self):
        rows = figure10b_psyclone_gpu()
        pw = [r for r in rows if r["benchmark"].startswith("pw")]
        traadv_small = next(r for r in rows if r["benchmark"] == "traadv-4m")
        # Managed-memory page faults make PSyclone far slower on PW advection.
        assert all(r["speedup_xdsl_over_psyclone"] > 5 for r in pw)
        # Synchronous kernel launches make xDSL slower on small tracer advection.
        assert traadv_small["speedup_xdsl_over_psyclone"] < 1.0

    def test_table1_shape(self):
        rows = table1_fpga()
        assert {row["benchmark"] for row in rows} == {
            "pw-8m", "pw-33m", "pw-134m", "traadv-4m", "traadv-32m",
        }
        for row in rows:
            assert row["improvement"] > 50
            assert row["optimized_gpts"] < 1.0  # FPGA well below GPU throughput

    def test_figure11_shape(self):
        rows = figure11_psyclone_scaling(node_counts=(1, 8, 64))
        pw = [r for r in rows if r["benchmark"] == "pw"]
        assert pw[1]["gpts"] > pw[0]["gpts"]
        assert pw[2]["gpts"] > pw[1]["gpts"]
        # Strong-scaling effects on the small global problem: going 8 -> 64
        # nodes is far from the 8x ideal (the paper's flattening curve).
        assert pw[2]["gpts"] / pw[1]["gpts"] < 8 * 0.7

    def test_format_rows(self):
        text = format_rows([{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}])
        assert "a" in text and "0.25" in text
        assert format_rows([]) == "(no rows)"


class TestPaperListings:
    def test_listing1_jacobi_ir(self):
        """Listing 1: the 1D 3-point Jacobi stencil in the stencil dialect."""
        field_type = stencil.FieldType(([0], [128]), f64)
        kernel = func.FuncOp("listing1", FunctionType([field_type, field_type], []))
        b = Builder.at_end(kernel.body.block)
        source = b.insert(stencil.LoadOp(kernel.args[0]))
        apply_op = stencil.ApplyOp([source.result], [stencil.TempType(([1], [127]), f64)])
        b.insert(apply_op)
        inner = Builder.at_end(apply_op.body.block)
        from repro.dialects import arith

        left = inner.insert(stencil.AccessOp(apply_op.region_args[0], [-1])).result
        centre = inner.insert(stencil.AccessOp(apply_op.region_args[0], [0])).result
        right = inner.insert(stencil.AccessOp(apply_op.region_args[0], [1])).result
        two = inner.insert(arith.ConstantOp.from_float(2.0, f64)).result
        value = inner.insert(
            arith.SubfOp(inner.insert(arith.AddfOp(left, right)).result,
                         inner.insert(arith.MulfOp(two, centre)).result)
        ).result
        inner.insert(stencil.ReturnOp([value]))
        b.insert(stencil.StoreOp(apply_op.results[0], kernel.args[1],
                                 stencil.StencilBoundsAttr([1], [127])))
        b.insert(func.ReturnOp([]))
        kernel.verify()
        text = print_module(__import__("repro").dialects.builtin.ModuleOp([kernel]))
        assert "!stencil.field<[0,128]xf64>" in text
        assert '"stencil.apply"' in text

    def test_listing2_dmp_swap(self):
        """Listing 2: the declarative halo exchange of a 108x108 buffer on a 2x2 grid."""
        buffer_op = memref.AllocOp(MemRefType([108, 108], f64))
        swap = dmp.SwapOp(
            buffer_op.memref,
            dmp.GridAttr([2, 2]),
            [
                dmp.ExchangeAttr([4, 0], [100, 4], [0, 4], [0, -1]),
                dmp.ExchangeAttr([4, 104], [100, 4], [0, -4], [0, 1]),
            ],
        )
        swap.verify_()
        assert swap.total_exchanged_elements() == 800
        assert swap.grid.rank_count == 4

    def test_listing3_and_4_mpi_send_lowering(self):
        """Listings 3-4: mpi.send over an unwrapped memref lowers to MPI_Send."""
        from repro.dialects import arith, builtin

        kernel = func.FuncOp("listing3", FunctionType([], []))
        b = Builder.at_end(kernel.body.block)
        buffer = b.insert(memref.AllocOp(MemRefType([64, 2], f64))).memref
        unwrapped = b.insert(mpi.UnwrapMemrefOp(buffer))
        dest = b.insert(arith.ConstantOp(__import__("repro").ir.IntegerAttr(1, i32), i32)).result
        tag = b.insert(arith.ConstantOp(__import__("repro").ir.IntegerAttr(0, i32), i32)).result
        b.insert(mpi.SendOp(unwrapped.ptr, unwrapped.count, unwrapped.dtype, dest, tag))
        b.insert(func.ReturnOp([]))
        module = builtin.ModuleOp([kernel])
        lower_mpi_to_func(module)
        module.verify()
        names = [op.name for op in module.walk()]
        assert "memref.extract_aligned_pointer_as_index" in names
        assert "llvm.inttoptr" in names
        callees = {op.callee for op in module.walk() if isinstance(op, func.CallOp)}
        assert "MPI_Send" in callees
        # The element count (128) and the mpich MPI_DOUBLE constant are materialised.
        constants = {
            op.literal() for op in module.walk() if isinstance(op, arith.ConstantOp)
        }
        assert 128 in constants
        assert 0x4C00080B in constants
