"""A simulated MPI runtime.

The paper runs its generated code on ARCHER2 with mpich; here the same lowered
communication code runs on an in-process message-passing runtime.  Every rank
executes in its own thread against a shared :class:`SimulatedMPI` world:

* point-to-point messages are *buffered*: ``isend``/``send`` never block,
  ``recv``/``wait`` block until a matching message (by source and tag) arrives;
* non-blocking operations return request objects compatible with
  ``wait``/``waitall``/``test``;
* the collective subset of the paper (reduce, allreduce, bcast, gather,
  barrier) is implemented on top of point-to-point messages with reserved tags.

Statistics (message and byte counts) are recorded so tests and the performance
model can check communication volumes against the analytic expectations.

:class:`CommunicatorBase` is the rank-level interface the interpreter programs
against.  It owns the collective algorithms (expressed purely in terms of the
abstract point-to-point primitives and the reserved tag space), so every world
implementation — the thread-backed :class:`SimulatedMPI` here and the
OS-process world in :mod:`repro.runtime.mp_world` — exhibits byte-identical
message traffic and statistics for the same program.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

#: Tag space reserved for collective operations (user tags must be smaller).
_COLLECTIVE_TAG_BASE = 1_000_000


class MPIRuntimeError(Exception):
    """Raised on misuse of the simulated runtime (bad rank, timeout, ...)."""


@dataclass
class CommStatistics:
    """Per-world communication counters.

    The ``bytes_elided`` / ``shared_blocks_reused`` pair describes the
    process runtime's shared-memory copy elision (fields scattered into and
    gathered out of the ``multiprocessing.shared_memory`` blocks directly,
    blocks recycled across runs).  They are *excluded from equality* because
    they measure a transport property of one runtime, not the program's
    communication behaviour — the thread and process worlds must still
    compare equal on everything the program itself caused.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    barriers: int = 0
    #: Field bytes that were *not* memcpy'd thanks to scatter/gather reading
    #: and writing the shared-memory blocks directly (process runtime only).
    bytes_elided: int = field(default=0, compare=False)
    #: Shared-memory blocks recycled from a previous run instead of allocated.
    shared_blocks_reused: int = field(default=0, compare=False)

    def reset(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.collectives = 0
        self.barriers = 0
        self.bytes_elided = 0
        self.shared_blocks_reused = 0


class SimRequest:
    """A request handle returned by the non-blocking operations."""

    __slots__ = ("kind", "comm", "source", "tag", "buffer", "completed")

    def __init__(self, kind: str, comm: "RankCommunicator", source: int, tag: int,
                 buffer: Optional[np.ndarray]):
        self.kind = kind
        self.comm = comm
        self.source = source
        self.tag = tag
        self.buffer = buffer
        self.completed = kind == "send"  # buffered sends complete immediately

    def test(self) -> bool:
        if self.completed:
            return True
        if self.kind == "recv":
            done = self.comm.world.try_complete_recv(self)
            self.completed = done
            return done
        return True

    def wait(self, timeout: float) -> None:
        if self.completed:
            return
        self.comm.world.wait_recv(self, timeout)
        self.completed = True


class CommunicatorBase(ABC):
    """The per-rank MPI interface both execution runtimes implement.

    Subclasses provide the point-to-point transport (buffered sends, blocking
    and non-blocking receives) and the statistics hooks; the collective subset
    of the paper is implemented *here*, on top of those primitives, with
    reserved tags — so the thread world and the process world produce the same
    message counts, byte counts and deterministic reduction order.
    """

    rank: int

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of ranks in the world."""

    # -- point to point (transport-specific) ---------------------------------
    @abstractmethod
    def send(self, data: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffered send: never blocks."""

    @abstractmethod
    def isend(self, data: np.ndarray, dest: int, tag: int = 0) -> Any:
        """Non-blocking send; returns a request with ``test``/``wait``."""

    @abstractmethod
    def recv(self, buffer: np.ndarray, source: int, tag: int = 0) -> np.ndarray:
        """Blocking receive into ``buffer`` (matched by source and tag)."""

    @abstractmethod
    def irecv(self, buffer: np.ndarray, source: int, tag: int = 0) -> Any:
        """Non-blocking receive; returns a request with ``test``/``wait``."""

    @abstractmethod
    def wait(self, request: Any) -> None:
        """Block until a request completes."""

    def waitall(self, requests: Sequence[Any]) -> None:
        for request in requests:
            if request is not None:
                self.wait(request)

    def test(self, request: Any) -> bool:
        return request.test()

    # -- statistics hooks ----------------------------------------------------
    @abstractmethod
    def _record_collective(self) -> None:
        """Count one collective invocation on this rank."""

    @abstractmethod
    def _record_barrier(self) -> None:
        """Count one barrier invocation on this rank."""

    # -- collectives (shared by all transports) ------------------------------
    def barrier(self) -> None:
        self._record_barrier()
        token = np.zeros(1, dtype=np.int8)
        self._collective_gather_scatter(token)

    def reduce(self, data: np.ndarray, operation: str = "sum", root: int = 0) -> Optional[np.ndarray]:
        if operation not in ("sum", "prod", "min", "max", "land", "lor"):
            raise MPIRuntimeError(f"unknown reduction operation {operation!r}")
        self._record_collective()
        tag = _COLLECTIVE_TAG_BASE + 1
        data = np.asarray(data)
        if self.rank == root:
            accumulator = np.array(data, copy=True)
            for source in range(self.size):
                if source == root:
                    continue
                contribution = np.empty_like(data)
                self.recv(contribution, source, tag)
                accumulator = _combine(accumulator, contribution, operation)
            return accumulator
        self.send(data, root, tag)
        return None

    def allreduce(self, data: np.ndarray, operation: str = "sum") -> np.ndarray:
        reduced = self.reduce(data, operation, root=0)
        return self.bcast(reduced if self.rank == 0 else np.empty_like(np.asarray(data)), root=0)

    def bcast(self, data: np.ndarray, root: int = 0) -> np.ndarray:
        self._record_collective()
        tag = _COLLECTIVE_TAG_BASE + 2
        data = np.asarray(data)
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(data, dest, tag)
            return data
        buffer = np.empty_like(data)
        self.recv(buffer, root, tag)
        return buffer

    def gather(self, data: np.ndarray, root: int = 0) -> Optional[np.ndarray]:
        self._record_collective()
        tag = _COLLECTIVE_TAG_BASE + 3
        data = np.asarray(data)
        if self.rank == root:
            parts = [None] * self.size
            parts[root] = np.array(data, copy=True)
            for source in range(self.size):
                if source == root:
                    continue
                buffer = np.empty_like(data)
                self.recv(buffer, source, tag)
                parts[source] = buffer
            return np.stack(parts)
        self.send(data, root, tag)
        return None

    def _collective_gather_scatter(self, token: np.ndarray) -> None:
        """A naive barrier: gather tokens at rank 0, then broadcast a release."""
        tag_in = _COLLECTIVE_TAG_BASE + 4
        tag_out = _COLLECTIVE_TAG_BASE + 5
        if self.rank == 0:
            for source in range(1, self.size):
                self.recv(np.empty_like(token), source, tag_in)
            for dest in range(1, self.size):
                self.send(token, dest, tag_out)
        else:
            self.send(token, 0, tag_in)
            self.recv(np.empty_like(token), 0, tag_out)

    # -- lifecycle -----------------------------------------------------------
    def init(self) -> None:
        """MPI_Init equivalent (a no-op; the world exists already)."""

    def finalize(self) -> None:
        """MPI_Finalize equivalent."""


class SimulatedMPI:
    """The shared state of one simulated MPI_COMM_WORLD."""

    def __init__(self, size: int, timeout: float = 30.0):
        if size < 1:
            raise MPIRuntimeError("world size must be at least 1")
        self.size = size
        self.timeout = timeout
        self.statistics = CommStatistics()
        self._lock = threading.Condition()
        # mailbox[rank][(source, tag)] -> deque of numpy arrays
        self._mailboxes: list[dict[tuple[int, int], deque]] = [
            defaultdict(deque) for _ in range(size)
        ]
        self._finalized = [False] * size

    # -- communicator construction ------------------------------------------
    def communicator(self, rank: int) -> "RankCommunicator":
        if not 0 <= rank < self.size:
            raise MPIRuntimeError(f"rank {rank} outside world of size {self.size}")
        return RankCommunicator(self, rank)

    def communicators(self) -> list["RankCommunicator"]:
        return [self.communicator(rank) for rank in range(self.size)]

    # -- message transport ------------------------------------------------------
    def post_message(self, source: int, dest: int, tag: int, data: np.ndarray) -> None:
        if not 0 <= dest < self.size:
            raise MPIRuntimeError(f"send to invalid rank {dest}")
        payload = np.array(data, copy=True)
        with self._lock:
            self._mailboxes[dest][(source, tag)].append(payload)
            self.statistics.messages_sent += 1
            self.statistics.bytes_sent += payload.nbytes
            self._lock.notify_all()

    def _pop_message(self, dest: int, source: int, tag: int) -> Optional[np.ndarray]:
        queue = self._mailboxes[dest].get((source, tag))
        if queue:
            return queue.popleft()
        return None

    def try_complete_recv(self, request: SimRequest) -> bool:
        with self._lock:
            message = self._pop_message(request.comm.rank, request.source, request.tag)
            if message is None:
                return False
        _copy_into(request.buffer, message)
        return True

    def wait_recv(self, request: SimRequest, timeout: Optional[float] = None) -> None:
        deadline_timeout = timeout if timeout is not None else self.timeout
        with self._lock:
            message = self._pop_message(request.comm.rank, request.source, request.tag)
            while message is None:
                if not self._lock.wait(timeout=deadline_timeout):
                    raise MPIRuntimeError(
                        f"rank {request.comm.rank} timed out waiting for a message "
                        f"from rank {request.source} with tag {request.tag}"
                    )
                message = self._pop_message(request.comm.rank, request.source, request.tag)
        _copy_into(request.buffer, message)

    def mark_finalized(self, rank: int) -> None:
        self._finalized[rank] = True

    # -- SPMD driver -------------------------------------------------------------
    def run_spmd(
        self,
        body: Callable[["RankCommunicator"], object],
        *,
        timeout: Optional[float] = None,
    ) -> list[object]:
        """Run ``body(comm)`` on every rank, each in its own thread.

        All joins share a single deadline, so a deadlocked world of N ranks
        waits the intended timeout *once* rather than N times, and the first
        rank that raises fails the whole run immediately (its exception is
        re-raised; the other, possibly still blocked, daemon threads are
        abandoned to their own timeouts).
        """
        results: list[object] = [None] * self.size
        errors: list[Optional[BaseException]] = [None] * self.size

        def worker(rank: int) -> None:
            try:
                results[rank] = body(self.communicator(rank))
            except BaseException as err:  # noqa: BLE001 - propagate to the caller
                errors[rank] = err
                with self._lock:
                    self._lock.notify_all()

        threads = [
            threading.Thread(target=worker, args=(rank,), daemon=True)
            for rank in range(self.size)
        ]
        for thread in threads:
            thread.start()
        join_timeout = timeout if timeout is not None else self.timeout * 4
        deadline = time.monotonic() + join_timeout
        pending = list(threads)
        while pending:
            if any(error is not None for error in errors):
                break  # fail fast: a rank already crashed
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            pending[0].join(timeout=min(0.05, remaining))
            pending = [thread for thread in pending if thread.is_alive()]
        for error in errors:
            if error is not None:
                raise error
        for rank, thread in enumerate(threads):
            if thread.is_alive():
                raise MPIRuntimeError(
                    f"rank {rank} did not finish within {join_timeout}s (deadlock?)"
                )
        return results


class RankCommunicator(CommunicatorBase):
    """The thread-world rank interface used by the interpreter and examples."""

    def __init__(self, world: SimulatedMPI, rank: int):
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.size

    # -- point to point ----------------------------------------------------------
    def send(self, data: np.ndarray, dest: int, tag: int = 0) -> None:
        self.world.post_message(self.rank, dest, tag, np.asarray(data))

    def isend(self, data: np.ndarray, dest: int, tag: int = 0) -> SimRequest:
        self.send(data, dest, tag)
        return SimRequest("send", self, dest, tag, None)

    def recv(self, buffer: np.ndarray, source: int, tag: int = 0) -> np.ndarray:
        request = SimRequest("recv", self, source, tag, np.asarray(buffer))
        self.world.wait_recv(request)
        return buffer

    def irecv(self, buffer: np.ndarray, source: int, tag: int = 0) -> SimRequest:
        return SimRequest("recv", self, source, tag, np.asarray(buffer))

    def wait(self, request: SimRequest) -> None:
        request.wait(self.world.timeout)

    # -- statistics hooks --------------------------------------------------------
    def _record_collective(self) -> None:
        self.world.statistics.collectives += 1

    def _record_barrier(self) -> None:
        self.world.statistics.barriers += 1

    # -- lifecycle ------------------------------------------------------------------
    def finalize(self) -> None:
        self.world.mark_finalized(self.rank)


def _copy_into(buffer: Optional[np.ndarray], message: np.ndarray) -> None:
    if buffer is None:
        return
    np.copyto(buffer, message.reshape(buffer.shape).astype(buffer.dtype, copy=False))


def _combine(lhs: np.ndarray, rhs: np.ndarray, operation: str) -> np.ndarray:
    if operation == "sum":
        return lhs + rhs
    if operation == "prod":
        return lhs * rhs
    if operation == "min":
        return np.minimum(lhs, rhs)
    if operation == "max":
        return np.maximum(lhs, rhs)
    if operation == "land":
        return np.logical_and(lhs, rhs).astype(lhs.dtype)
    if operation == "lor":
        return np.logical_or(lhs, rhs).astype(lhs.dtype)
    raise MPIRuntimeError(f"unknown reduction operation {operation!r}")
