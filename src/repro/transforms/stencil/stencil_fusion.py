"""Horizontal fusion of independent stencil.apply operations.

The PW-advection benchmark in the paper contains three independent stencil
computations over three fields; the shared stack fuses them into a single
stencil region (one parallel loop nest, one OpenMP region / GPU kernel).  The
tracer-advection benchmark cannot be fused the same way because of
producer-consumer dependencies between its 24 stencils, which is exactly what
limits its performance in figs. 10a/10b.

This pass fuses apply operations that:

* live in the same block,
* are stored over identical bounds, and
* have no data dependence between each other (no apply in the group consumes,
  directly or through a load/store chain on the same field, a value produced
  by another apply in the group).
"""

from __future__ import annotations

from ...dialects import stencil
from ...ir.builder import Builder
from ...ir.context import MLContext
from ...ir.core import Block, Operation, SSAValue
from ...ir.pass_manager import ModulePass, PassRegistry


def _stores_of(apply_op: stencil.ApplyOp) -> list[stencil.StoreOp]:
    stores = []
    for result in apply_op.results:
        for use in result.uses:
            if isinstance(use.operation, stencil.StoreOp):
                stores.append(use.operation)
    return stores


def _store_bounds(apply_op: stencil.ApplyOp) -> stencil.StencilBoundsAttr | None:
    stores = _stores_of(apply_op)
    if not stores:
        return None
    bounds = stores[0].bounds
    if any(store.bounds != bounds for store in stores[1:]):
        return None
    return bounds


def _fields_read(apply_op: stencil.ApplyOp) -> set[int]:
    fields = set()
    for operand in apply_op.operands:
        owner = operand.owner
        if isinstance(owner, stencil.LoadOp):
            fields.add(id(owner.field))
    return fields


def _fields_written(apply_op: stencil.ApplyOp) -> set[int]:
    return {id(store.field) for store in _stores_of(apply_op)}


def _independent(first: stencil.ApplyOp, second: stencil.ApplyOp) -> bool:
    """No read-after-write or write-after-write hazards between the two applies."""
    if _fields_written(first) & (_fields_read(second) | _fields_written(second)):
        return False
    if _fields_written(second) & _fields_read(first):
        return False
    return True


def _fusable_groups(block: Block) -> list[list[stencil.ApplyOp]]:
    """Maximal groups of adjacent, independent, same-bounds applies in a block."""
    applies = [op for op in block.ops if isinstance(op, stencil.ApplyOp)]
    groups: list[list[stencil.ApplyOp]] = []
    current: list[stencil.ApplyOp] = []
    for apply_op in applies:
        bounds = _store_bounds(apply_op)
        if bounds is None:
            if len(current) > 1:
                groups.append(current)
            current = []
            continue
        if not current:
            current = [apply_op]
            continue
        same_bounds = _store_bounds(current[0]) == bounds
        independent = all(_independent(existing, apply_op) for existing in current)
        if same_bounds and independent:
            current.append(apply_op)
        else:
            if len(current) > 1:
                groups.append(current)
            current = [apply_op]
    if len(current) > 1:
        groups.append(current)
    return groups


def _fuse_group(group: list[stencil.ApplyOp]) -> stencil.ApplyOp:
    """Merge a group of applies into one apply with concatenated results."""
    # Insert the fused apply where the *first* group member stood, so the
    # stores of earlier members (which follow their apply) still come after
    # the fused computation.
    anchor = group[0]
    builder = Builder.before(anchor)

    merged_operands: list[SSAValue] = []
    operand_slot: dict[int, int] = {}
    for apply_op in group:
        for operand in apply_op.operands:
            if id(operand) not in operand_slot:
                operand_slot[id(operand)] = len(merged_operands)
                merged_operands.append(operand)

    # Operands of later group members (their stencil.load ops) may be defined
    # after the insertion point; hoist those definitions in front of it.
    block = anchor.parent_block
    assert block is not None
    anchor_position = block.ops.index(anchor)
    for operand in merged_operands:
        owner = operand.owner
        if isinstance(owner, Operation) and owner.parent is block:
            if block.ops.index(owner) > anchor_position:
                block.detach_op(owner)
                block.insert_op_before(owner, anchor)
                anchor_position = block.ops.index(anchor)

    result_types = [r.type for apply_op in group for r in apply_op.results]
    fused = stencil.ApplyOp(merged_operands, result_types)
    builder.insert(fused)
    fused_block = fused.body.block
    body_builder = Builder.at_end(fused_block)

    returned_values: list[SSAValue] = []
    for apply_op in group:
        value_map: dict[SSAValue, SSAValue] = {}
        for arg, operand in zip(apply_op.region_args, apply_op.operands):
            value_map[arg] = fused_block.args[operand_slot[id(operand)]]
        for op in apply_op.body.block.ops:
            if isinstance(op, stencil.ReturnOp):
                returned_values.extend(value_map.get(v, v) for v in op.operands)
            else:
                body_builder.insert(op.clone(value_map))
    body_builder.insert(stencil.ReturnOp(returned_values))

    # Re-point stores at the fused results and drop the original applies.
    result_cursor = 0
    for apply_op in group:
        for result in apply_op.results:
            result.replace_by(fused.results[result_cursor])
            result_cursor += 1
        apply_op.erase()
    return fused


def fuse_applies(module: Operation) -> int:
    """Fuse independent stencil.apply groups; return the number of fused groups."""
    fused_groups = 0
    for op in list(module.walk()):
        for region in op.regions:
            for block in region.blocks:
                for group in _fusable_groups(block):
                    if all(apply_op.parent is not None for apply_op in group):
                        _fuse_group(group)
                        fused_groups += 1
    return fused_groups


def count_stencil_regions(module: Operation) -> int:
    """The number of distinct stencil regions (== OpenMP regions / GPU kernels)."""
    return len(stencil.apply_ops_of(module))


class StencilFusionPass(ModulePass):
    """Fuse independent stencil computations into a single stencil region."""

    name = "stencil-fusion"

    def apply(self, ctx: MLContext, module: Operation) -> None:
        fuse_applies(module)


PassRegistry.register("stencil-fusion", StencilFusionPass)


def stencil_precodegen_pipeline(ctx: MLContext, *, fuse: bool = True):
    """The staged stencil-level pipeline every lowering runs *first*.

    Ordering is the point: fusion only exists at the stencil level, so it must
    run before ``stencil_to_scf`` erases the apply structure — and the
    megakernel emitter sees one nest per fused region only if the merge
    happened here.  CSE and DCE then clean the merged apply bodies (duplicate
    accesses across formerly-separate applies, operands orphaned by the
    merge), and canonicalize restores the invariants later lowerings assume.
    """
    from ...ir.pass_manager import PassManager, PassRegistry as _Registry

    names = (["stencil-fusion"] if fuse else []) + ["cse", "dce", "canonicalize"]
    return PassManager(ctx, [_Registry.get(name) for name in names])
