"""Intra-rank worker teams: the OpenMP thread level of the hybrid runtime.

The paper's strong-scaling configurations (figs. 8 and 11) are *hybrid*
MPI+OpenMP: several OS-process ranks, each running a team of threads over the
rank's shared address space.  This module provides that second level for the
reproduction: a :class:`ThreadTeam` is a persistent pool of worker threads
that the vectorized backend (:mod:`repro.interp.vectorize`) uses to split a
compiled nest's outermost dimension into per-thread chunks.  The chunks are
*prepared* (all loads and element-wise math) concurrently — NumPy releases the
GIL inside its ufunc loops, so the flops genuinely overlap — and committed
only after every chunk finished preparing, which preserves the backend's
all-loads-then-all-stores semantics and therefore its bit-identical
equivalence with the tree walker.

Teams are cached per size and per process, exactly like the OS-process worker
pool one level up: a worker process of the SPMD runtime creates its team on
the first hybrid run and reuses it for every later one.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, Sequence


class ThreadTeam:
    """A fixed-size, reusable pool of intra-rank worker threads."""

    def __init__(self, size: int):
        if size < 2:
            raise ValueError("a thread team needs at least 2 threads")
        self.size = size
        self._pool = ThreadPoolExecutor(
            max_workers=size, thread_name_prefix="repro-team"
        )

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every item concurrently; preserves item order.

        Exceptions raised by ``fn`` propagate to the caller (from the first
        failing item, like ``ThreadPoolExecutor.map``).
        """
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        self._pool.shutdown(wait=False)


_TEAMS: dict[int, ThreadTeam] = {}
_TEAMS_LOCK = threading.Lock()


def _drop_inherited_teams() -> None:
    """Forget the parent's teams in a forked child.

    Only the calling thread survives a fork: an inherited ThreadPoolExecutor
    still *believes* its workers exist, so the first ``map`` on it would
    block forever.  The process runtime forks its workers (on Linux), so the
    cache must be repopulated with fresh teams in every child.
    """
    _TEAMS.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix only
    os.register_at_fork(after_in_child=_drop_inherited_teams)


def get_thread_team(size: int) -> Optional[ThreadTeam]:
    """The process-wide team of ``size`` threads (None when size <= 1).

    Teams persist for the life of the process so repeated runs — e.g. every
    time step dispatched by one worker of the process runtime — reuse the
    same threads instead of respawning them.
    """
    if size <= 1:
        return None
    with _TEAMS_LOCK:
        team = _TEAMS.get(size)
        if team is None:
            team = ThreadTeam(size)
            _TEAMS[size] = team
        return team


def shutdown_thread_teams() -> None:
    """Tear down every cached team (tests; harmless if none exist)."""
    with _TEAMS_LOCK:
        for team in _TEAMS.values():
            team.shutdown()
        _TEAMS.clear()


def split_trip_counts(trips: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(trips)`` into at most ``parts`` balanced [start, end) spans."""
    parts = max(1, min(parts, trips))
    return [
        (index * trips // parts, (index + 1) * trips // parts)
        for index in range(parts)
        if index * trips // parts < (index + 1) * trips // parts
    ]
